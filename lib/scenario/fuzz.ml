module Prng = Agg_util.Prng
module Plan = Agg_faults.Plan
module Cache = Agg_cache.Cache

let is_valid t = match Scenario.validate t with () -> true | exception Invalid_argument _ -> false

let violates ?jobs ?events_cap t =
  match Exec.run ?jobs ?events_cap t with Ok o -> not o.Exec.pass | Error _ -> false

(* --- perturbation ----------------------------------------------------------- *)

let policy_palette =
  [|
    Scenario.Plain Cache.Lru;
    Scenario.Plain Cache.Arc;
    Scenario.Plain Cache.Clock;
    Scenario.Group 2;
    Scenario.Group 5;
    Scenario.Group 10;
  |]

let clamp_rate r = Float.max 0.0 (Float.min 1.0 r)

let perturb rng (t : Scenario.t) =
  let absent policies policy =
    not (List.exists (fun p -> Scenario.policy_name p = Scenario.policy_name policy) policies)
  in
  let orphaned policies =
    List.exists
      (fun e ->
        let (Scenario.Hit_rate_min { policy; _ } | Scenario.Hit_rate_max { policy; _ }) = e in
        absent policies policy)
      t.Scenario.expectations
    || List.exists (fun s -> absent policies s.Scenario.slo_policy) t.Scenario.slos
  in
  let candidate =
    match Prng.int rng 8 with
    | 0 -> (
        (* reseed the workload *)
        match t.Scenario.workload with
        | Scenario.Profile p ->
            { t with Scenario.workload = Scenario.Profile { p with seed = Prng.int rng 1_000_000 } }
        | _ -> t)
    | 1 -> (
        (* resize the workload: 0.5x .. 2x, floor 100 *)
        match t.Scenario.workload with
        | Scenario.Profile p ->
            let events = max 100 (p.events / 2 * Prng.int_in_range rng ~lo:1 ~hi:4) in
            { t with Scenario.workload = Scenario.Profile { p with events } }
        | _ -> t)
    | 2 ->
        (* scale a fault rate *)
        let f = t.Scenario.faults in
        let faults =
          match Prng.int rng 4 with
          | 0 -> { f with Plan.loss_rate = clamp_rate (Prng.float rng 0.3) }
          | 1 ->
              { f with
                Plan.outage_period = 500 * Prng.int_in_range rng ~lo:1 ~hi:4;
                outage_rate = clamp_rate (Prng.float rng 0.3);
                outage_length = 50 * Prng.int_in_range rng ~lo:1 ~hi:4 }
          | 2 ->
              { f with
                Plan.slow_rate = clamp_rate (Prng.float rng 0.2);
                slow_multiplier = 1.0 +. Prng.float rng 4.0 }
          | _ -> { f with Plan.crash_rate = clamp_rate (Prng.float rng 0.005) }
        in
        { t with Scenario.faults = faults }
    | 3 -> (
        (* resize the fleet *)
        match t.Scenario.topology with
        | Scenario.Fleet f ->
            let clients = max 1 (f.clients / 2 * Prng.int_in_range rng ~lo:1 ~hi:4) in
            { t with Scenario.topology = Scenario.Fleet { f with clients } }
        | Scenario.Cluster c ->
            let clients = max 1 (c.clients / 2 * Prng.int_in_range rng ~lo:1 ~hi:4) in
            { t with Scenario.topology = Scenario.Cluster { c with clients } }
        | Scenario.Path _ -> t)
    | 4 ->
        (* add a palette policy not already present *)
        let missing =
          Array.to_list policy_palette
          |> List.filter (fun p ->
                 not
                   (List.exists
                      (fun q -> Scenario.policy_name q = Scenario.policy_name p)
                      t.Scenario.policies))
        in
        if missing = [] then t
        else
          let p = Prng.choose rng (Array.of_list missing) in
          { t with Scenario.policies = t.Scenario.policies @ [ p ] }
    | 5 ->
        (* drop a random policy (keep >= 1, keep expectations satisfied) *)
        let n = List.length t.Scenario.policies in
        if n <= 1 then t
        else
          let k = Prng.int rng n in
          let policies = List.filteri (fun idx _ -> idx <> k) t.Scenario.policies in
          if orphaned policies then t else { t with Scenario.policies = policies }
    | 6 -> (
        (* reseed the fault plan *)
        let f = t.Scenario.faults in
        { t with Scenario.faults = { f with Plan.seed = Prng.int rng 1_000_000 } })
    | _ -> (
        (* reseed the ring (cluster) *)
        match t.Scenario.topology with
        | Scenario.Cluster c ->
            { t with Scenario.topology = Scenario.Cluster { c with ring_seed = Prng.int rng 1_000_000 } }
        | _ -> t)
  in
  if is_valid candidate then candidate else t

(* --- shrinking -------------------------------------------------------------- *)

(* Candidate reductions, in documented order. Only structurally smaller
   (or fault-free-er) scenarios are proposed; the caller keeps a
   candidate iff it is valid and still violates. *)
let reductions (t : Scenario.t) =
  let faults_steps =
    let f = t.Scenario.faults in
    (if f <> Plan.none then [ { t with Scenario.faults = Plan.none } ] else [])
    @ (if f.Plan.loss_rate > 0.0 then
         [ { t with Scenario.faults = { f with Plan.loss_rate = 0.0 } } ]
       else [])
    @ (if f.Plan.outage_rate > 0.0 then
         [ { t with Scenario.faults = { f with Plan.outage_rate = 0.0 } } ]
       else [])
    @ (if f.Plan.slow_rate > 0.0 then
         [ { t with Scenario.faults = { f with Plan.slow_rate = 0.0; slow_multiplier = 1.0 } } ]
       else [])
    @
    if f.Plan.crash_rate > 0.0 then
      [ { t with Scenario.faults = { f with Plan.crash_rate = 0.0 } } ]
    else []
  in
  let topology_steps =
    match t.Scenario.topology with
    | Scenario.Path _ -> []
    | Scenario.Fleet f ->
        if f.clients > 1 then
          [ { t with Scenario.topology = Scenario.Fleet { f with clients = max 1 (f.clients / 2) } } ]
        else []
    | Scenario.Cluster c ->
        (if c.churn <> [] then
           [ { t with Scenario.topology = Scenario.Cluster { c with churn = [] } } ]
         else [])
        @ (if c.clients > 1 then
             [ { t with
                 Scenario.topology = Scenario.Cluster { c with clients = max 1 (c.clients / 2) } } ]
           else [])
        @ (if c.nodes > 1 then
             [ { t with
                 Scenario.topology =
                   Scenario.Cluster
                     { c with nodes = max 1 (c.nodes / 2); replicas = min c.replicas (max 1 (c.nodes / 2)) } } ]
           else [])
        @
        if c.replicas > 1 then
          [ { t with Scenario.topology = Scenario.Cluster { c with replicas = max 1 (c.replicas / 2) } } ]
        else []
  in
  let events_steps =
    match t.Scenario.workload with
    | Scenario.Profile p when p.events > 100 ->
        [ { t with Scenario.workload = Scenario.Profile { p with events = max 100 (p.events / 2) } } ]
    | _ -> []
  in
  let drop_each list rebuild =
    List.mapi (fun k _ -> rebuild (List.filteri (fun idx _ -> idx <> k) list)) list
  in
  let policy_steps =
    if List.length t.Scenario.policies <= 1 then []
    else drop_each t.Scenario.policies (fun policies -> { t with Scenario.policies })
  in
  let invariant_steps =
    drop_each t.Scenario.invariants (fun invariants -> { t with Scenario.invariants })
  in
  let expectation_steps =
    drop_each t.Scenario.expectations (fun expectations -> { t with Scenario.expectations })
  in
  let slo_steps = drop_each t.Scenario.slos (fun slos -> { t with Scenario.slos }) in
  faults_steps @ topology_steps @ events_steps @ policy_steps @ invariant_steps
  @ expectation_steps @ slo_steps

let shrink ?jobs ?events_cap t =
  if not (violates ?jobs ?events_cap t) then t
  else
    let rec fixpoint t =
      let step =
        List.find_opt
          (fun candidate -> is_valid candidate && violates ?jobs ?events_cap candidate)
          (reductions t)
      in
      match step with None -> t | Some smaller -> fixpoint smaller
    in
    fixpoint t

(* --- the fuzz loop ----------------------------------------------------------- *)

type failure = { original : Scenario.t; shrunk : Scenario.t }
type report = { rounds : int; tested : int; failure : failure option }

let run ?jobs ?events_cap ~seed ~rounds base =
  let rng = Prng.create ~seed () in
  let rec loop round current tested =
    if round > rounds then { rounds; tested; failure = None }
    else
      let current = if round = 0 || round mod 8 = 0 then base else current in
      let candidate = if round = 0 then base else perturb rng current in
      if violates ?jobs ?events_cap candidate then
        { rounds;
          tested = tested + 1;
          failure = Some { original = candidate; shrunk = shrink ?jobs ?events_cap candidate } }
      else loop (round + 1) candidate (tested + 1)
  in
  loop 0 base 0
