(** Scenario fuzzing: perturb a base scenario with {!Agg_util.Prng},
    execute it, and on an invariant violation greedily shrink to a
    minimal still-failing scenario (the {!Diff_engine} discipline:
    accept a reduction only when the violation persists, repeat the
    fixed transform order to a fixpoint).

    Shrinking order — each transform is attempted in turn, and the whole
    pass repeats until no transform applies:

    + fault plan to {!Agg_faults.Plan.none}, then each rate to zero
    + drop the churn schedule
    + halve clients (floor 1), then nodes and replicas (cluster)
    + halve the event count (floor 100, profile workloads)
    + drop matrix policies one at a time (keeping at least one, and
      never orphaning an expectation or slo rule)
    + drop invariants, then expectations, then slo rules, one at a time

    Everything is a pure function of the seed: a fixed [seed] replays
    the same perturbations, violation and shrunk scenario. *)

val perturb : Agg_util.Prng.t -> Scenario.t -> Scenario.t
(** One random, validity-preserving mutation: reseed or resize a profile
    workload, scale a fault rate, resize the fleet, or grow/shrink the
    policy matrix. Expectation thresholds are never touched (loosening
    or tightening them would manufacture trivial violations). *)

val violates : ?jobs:int -> ?events_cap:int -> Scenario.t -> bool
(** [true] when the scenario runs and at least one invariant,
    expectation or slo check fails. A scenario that cannot run at all
    (bad file, unknown profile) does not count as a violation. *)

val shrink : ?jobs:int -> ?events_cap:int -> Scenario.t -> Scenario.t
(** Greedy reduction of a violating scenario; returns the smallest
    still-violating scenario the transform order reaches. Returns the
    input unchanged when it does not violate. *)

type failure = {
  original : Scenario.t;  (** the perturbed scenario that first failed *)
  shrunk : Scenario.t;  (** its minimal form; still violating *)
}

type report = {
  rounds : int;  (** perturbation rounds requested *)
  tested : int;  (** scenarios actually executed *)
  failure : failure option;  (** the first violation found, shrunk *)
}

val run :
  ?jobs:int -> ?events_cap:int -> seed:int -> rounds:int -> Scenario.t -> report
(** Fuzz loop: perturb the base scenario [rounds] times (each round
    mutates the previous round's scenario, resetting to the base every
    8 rounds), executing each; stops at the first violation and shrinks
    it. The base scenario itself is tested first — a known-bad base
    reports itself, shrunk, without any perturbation. *)
