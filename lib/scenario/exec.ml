module Trace = Agg_trace.Trace
module Codec = Agg_trace.Codec
module Import = Agg_trace.Import
module Profile = Agg_workload.Profile
module Generator = Agg_workload.Generator
module Scheme = Agg_system.Scheme
module Path = Agg_system.Path
module Fleet = Agg_system.Fleet
module Cluster = Agg_cluster.Cluster
module Counters = Agg_faults.Counters
module Resilience = Agg_faults.Resilience
module Pool = Agg_util.Pool

type cell = {
  policy : Scenario.policy;
  metrics : (string * float) list;
  series : Agg_obs.Series.t option;
}

let metric cell name = List.assoc_opt name cell.metrics

type check = { check_name : string; pass : bool; detail : string }

type outcome = {
  scenario : Scenario.t;
  events : int;
  cells : cell list;
  checks : check list;
  pass : bool;
  ok : bool;
}

(* --- workload loading ------------------------------------------------------ *)

let load_trace ?events_cap (t : Scenario.t) =
  let cap trace =
    match events_cap with
    | Some cap when cap < Trace.length trace -> Trace.sub trace ~pos:0 ~len:cap
    | _ -> trace
  in
  match t.Scenario.workload with
  | Scenario.Profile { profile; events; seed } -> (
      match Profile.by_name profile with
      | None -> Error (Printf.sprintf "unknown workload profile %S" profile)
      | Some p ->
          let events =
            match events_cap with Some cap -> min cap events | None -> events
          in
          Ok (Generator.generate ~seed ~events p))
  | Scenario.Trace_file { file } -> (
      match Codec.read_file file with
      | trace -> Ok (cap trace)
      | exception Codec.Parse_error { line; message } ->
          Error (Printf.sprintf "%s: line %d: %s" file line message)
      | exception Sys_error msg -> Error msg)
  | Scenario.Import_file { format; file } -> (
      match Import.of_file format file with
      | trace, _namespace -> Ok (cap trace)
      | exception Sys_error msg -> Error msg)

(* --- cells ----------------------------------------------------------------- *)

let scheme_of_policy = function
  | Scenario.Plain kind -> Scheme.Plain kind
  | Scenario.Group g -> Scheme.aggregating ~group_size:g ()

let hit_rate_pct ~accesses ~hits =
  if accesses = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int accesses

let fault_metrics (c : Counters.t) =
  [
    ("faults.lost_messages", float_of_int c.Counters.lost_messages);
    ("faults.outage_denials", float_of_int c.Counters.outage_denials);
    ("faults.timeouts", float_of_int c.Counters.timeouts);
    ("faults.retries", float_of_int c.Counters.retries);
    ("faults.degraded_fetches", float_of_int c.Counters.degraded_fetches);
    ("faults.slowed_fetches", float_of_int c.Counters.slowed_fetches);
    ("faults.crashes", float_of_int c.Counters.crashes);
  ]

let i = float_of_int

let run_cell (t : Scenario.t) trace policy =
  let scheme = scheme_of_policy policy in
  (* a per-cell series only when slo rules ask for one: without slos the
     run is byte-identical to a telemetry-free build *)
  let series =
    match t.Scenario.slos with
    | [] -> None
    | s :: _ -> Some (Agg_obs.Series.create ~window:s.Scenario.slo_window)
  in
  let scope =
    match series with
    | None -> None
    | Some series -> Some (Agg_obs.Scope.create ~series ())
  in
  let metrics =
    match t.Scenario.topology with
    | Scenario.Path { client_capacity; server_capacity } ->
        let config =
          {
            Path.default_config with
            Path.client_capacity;
            server_capacity;
            client = scheme;
            server = Scheme.plain_lru;
            faults = t.Scenario.faults;
            scope;
          }
        in
        let r = Path.run config trace in
        [
          ("accesses", i r.Path.accesses);
          ("client_hits", i r.Path.client_hits);
          ("server_hits", i r.Path.server_hits);
          ("disk_reads", i r.Path.disk_reads);
          ("files_transferred", i r.Path.files_transferred);
          ("round_trips", i r.Path.round_trips);
          ("hit_rate", hit_rate_pct ~accesses:r.Path.accesses ~hits:r.Path.client_hits);
          ("mean_latency", r.Path.mean_latency);
          ("p95_latency", r.Path.p95_latency);
          ("p99_latency", r.Path.p99_latency);
        ]
        @ fault_metrics r.Path.faults
    | Scenario.Fleet { clients; client_capacity; server_capacity } ->
        let config =
          {
            Fleet.default_config with
            Fleet.clients;
            client_capacity;
            client_scheme = scheme;
            server_capacity;
            server_scheme = scheme;
            faults = t.Scenario.faults;
            scope;
          }
        in
        let r = Fleet.run config trace in
        [
          ("accesses", i r.Fleet.accesses);
          ("client_hits", i r.Fleet.client_hits);
          ("server_requests", i r.Fleet.server_requests);
          ("server_hits", i r.Fleet.server_hits);
          ("store_fetches", i r.Fleet.store_fetches);
          ("invalidations", i r.Fleet.invalidations);
          ("hit_rate", hit_rate_pct ~accesses:r.Fleet.accesses ~hits:r.Fleet.client_hits);
        ]
        @ fault_metrics r.Fleet.faults
    | Scenario.Cluster
        { nodes; replicas; placement; ring_seed; clients; client_capacity; node_capacity; churn }
      ->
        let config =
          {
            Cluster.default_config with
            Cluster.nodes;
            replicas;
            ring_seed;
            metadata = placement;
            clients;
            client_capacity;
            client_scheme = scheme;
            node_capacity;
            node_scheme = scheme;
            faults = t.Scenario.faults;
            churn;
            scope;
          }
        in
        let r = Cluster.run config trace in
        [
          ("accesses", i r.Cluster.accesses);
          ("client_hits", i r.Cluster.client_hits);
          ("server_requests", i r.Cluster.server_requests);
          ("server_hits", i r.Cluster.server_hits);
          ("store_fetches", i r.Cluster.store_fetches);
          ("invalidations", i r.Cluster.invalidations);
          ("routed_fetches", i r.Cluster.routed_fetches);
          ("failovers", i r.Cluster.failovers);
          ("cross_shard_members", i r.Cluster.cross_shard_members);
          ("slowed_fetches", i r.Cluster.slowed_fetches);
          ("rebalances", i r.Cluster.rebalances);
          ("moved_files", i r.Cluster.moved_files);
          ("hit_rate", hit_rate_pct ~accesses:r.Cluster.accesses ~hits:r.Cluster.client_hits);
          ("mean_latency", r.Cluster.mean_latency);
          ("p95_latency", r.Cluster.p95_latency);
        ]
        @ fault_metrics r.Cluster.faults
  in
  { policy; metrics; series }

(* --- rendering ------------------------------------------------------------- *)

let value_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%d" (int_of_float v)
  else
    let s = Printf.sprintf "%g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let render_cell cell =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "cell policy=%s\n" (Scenario.policy_name cell.policy));
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %s=%s\n" k (value_str v)))
    cell.metrics;
  Buffer.contents b

let render_cells cells = String.concat "" (List.map render_cell cells)

let render_outcome o =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "scenario %s events=%d\n" o.scenario.Scenario.name o.events);
  Buffer.add_string b (render_cells o.cells);
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "check %s %s (%s)\n" c.check_name (if c.pass then "pass" else "FAIL")
           c.detail))
    o.checks;
  Buffer.add_string b
    (Printf.sprintf "verdict %s\n"
       (if o.pass then "pass" else if o.scenario.Scenario.expect_violation then "violation (expected)" else "FAIL"));
  Buffer.contents b

(* --- invariant checks ------------------------------------------------------ *)

let get cell name = match metric cell name with Some v -> v | None -> nan

(* Check [f] on every cell; the detail reports the first failing cell or
   the number of cells checked. *)
let per_cell name cells f =
  let failures =
    List.filter_map
      (fun cell ->
        match f cell with Ok () -> None | Error d -> Some (Scenario.policy_name cell.policy, d))
      cells
  in
  match failures with
  | [] -> { check_name = name; pass = true; detail = Printf.sprintf "%d cells" (List.length cells) }
  | (policy, d) :: _ -> { check_name = name; pass = false; detail = Printf.sprintf "cell %s: %s" policy d }

let check_conservation (t : Scenario.t) cells =
  per_cell "conservation" cells (fun cell ->
      let nonneg =
        List.find_opt (fun (_, v) -> v < 0.0 || Float.is_nan v) cell.metrics
      in
      match nonneg with
      | Some (k, v) -> Error (Printf.sprintf "%s=%s is negative" k (value_str v))
      | None -> (
          match t.Scenario.topology with
          | Scenario.Path _ ->
              let misses = get cell "accesses" -. get cell "client_hits" in
              if get cell "client_hits" > get cell "accesses" then
                Error "client_hits exceed accesses"
              else if get cell "server_hits" > misses then
                Error
                  (Printf.sprintf "server_hits=%s exceed misses=%s"
                     (value_str (get cell "server_hits"))
                     (value_str misses))
              else Ok ()
          | Scenario.Fleet _ | Scenario.Cluster _ ->
              let accesses = get cell "accesses" in
              let sum = get cell "client_hits" +. get cell "server_requests" in
              if sum <> accesses then
                Error
                  (Printf.sprintf "client_hits + server_requests = %s <> accesses = %s"
                     (value_str sum) (value_str accesses))
              else if get cell "server_hits" > get cell "server_requests" then
                Error "server_hits exceed server_requests"
              else Ok ()))

let check_every_request_served (t : Scenario.t) cells =
  per_cell "every_request_served" cells (fun cell ->
      let eq what lhs rhs =
        if lhs = rhs then Ok ()
        else Error (Printf.sprintf "%s: %s <> %s" what (value_str lhs) (value_str rhs))
      in
      match t.Scenario.topology with
      | Scenario.Path _ ->
          eq "round_trips vs misses" (get cell "round_trips")
            (get cell "accesses" -. get cell "client_hits")
      | Scenario.Fleet _ ->
          eq "server_requests vs misses" (get cell "server_requests")
            (get cell "accesses" -. get cell "client_hits")
      | Scenario.Cluster _ ->
          eq "routed + degraded vs server_requests"
            (get cell "routed_fetches" +. get cell "faults.degraded_fetches")
            (get cell "server_requests"))

let total_client_capacity (t : Scenario.t) =
  match t.Scenario.topology with
  | Scenario.Path { client_capacity; _ } -> client_capacity
  | Scenario.Fleet { clients; client_capacity; _ } -> clients * client_capacity
  | Scenario.Cluster { clients; client_capacity; _ } -> clients * client_capacity

let check_belady (t : Scenario.t) trace cells =
  let plain = List.filter (fun c -> match c.policy with Scenario.Plain _ -> true | _ -> false) cells in
  match plain with
  | [] ->
      { check_name = "belady_bound"; pass = true; detail = "no plain cells in the matrix" }
  | _ ->
      let capacity = total_client_capacity t in
      let optimal = Agg_cache.Belady.simulate ~capacity (Trace.files trace) in
      per_cell "belady_bound" plain (fun cell ->
          let hits = get cell "client_hits" in
          if hits <= float_of_int optimal.Agg_cache.Belady.hits then Ok ()
          else
            Error
              (Printf.sprintf "client_hits=%s beat Belady=%d at capacity %d" (value_str hits)
                 optimal.Agg_cache.Belady.hits capacity))

(* Latency floats depend on group-fetch vs demand-fetch cost accounting,
   so the g = 1 ≡ LRU identity is stated over the load counters only. *)
let load_counters cell =
  List.filter
    (fun (k, _) -> not (List.mem k [ "hit_rate"; "mean_latency"; "p95_latency"; "p99_latency" ]))
    cell.metrics

let check_g1_lru (t : Scenario.t) trace =
  let lru = run_cell t trace (Scenario.Plain Agg_cache.Cache.Lru) in
  let g1 = run_cell t trace (Scenario.Group 1) in
  let a = load_counters lru and b = load_counters g1 in
  let diff =
    List.filter_map
      (fun (k, v) ->
        match List.assoc_opt k b with
        | Some v' when v' = v -> None
        | Some v' -> Some (Printf.sprintf "%s: lru=%s g1=%s" k (value_str v) (value_str v'))
        | None -> Some (Printf.sprintf "%s missing from g1" k))
      a
  in
  match diff with
  | [] ->
      { check_name = "g1_equals_lru"; pass = true;
        detail = Printf.sprintf "%d load counters equal" (List.length a) }
  | d :: _ -> { check_name = "g1_equals_lru"; pass = false; detail = d }

let check_jobs_invariance run_cells =
  let one = render_cells (run_cells 1) in
  let two = render_cells (run_cells 2) in
  if String.equal one two then
    { check_name = "jobs_invariance"; pass = true;
      detail = Printf.sprintf "jobs=1 and jobs=2 byte-identical (%d bytes)" (String.length one) }
  else { check_name = "jobs_invariance"; pass = false; detail = "jobs=1 and jobs=2 renders differ" }

let check_expectation cells e =
  let name = Scenario.expectation_name e in
  let (Scenario.Hit_rate_min { policy; percent } | Scenario.Hit_rate_max { policy; percent }) = e in
  match
    List.find_opt (fun c -> Scenario.policy_name c.policy = Scenario.policy_name policy) cells
  with
  | None ->
      { check_name = name; pass = false;
        detail = Printf.sprintf "policy %s not in the matrix" (Scenario.policy_name policy) }
  | Some cell ->
      let rate = get cell "hit_rate" in
      let pass =
        match e with
        | Scenario.Hit_rate_min _ -> rate >= percent
        | Scenario.Hit_rate_max _ -> rate <= percent
      in
      { check_name = name; pass;
        detail = Printf.sprintf "hit_rate=%s" (value_str rate) }

(* An slo rule holds iff the windowed metric satisfies its bound in every
   checked window: non-empty windows starting at or after [slo_after].
   The detail pins the first violating window's access range. *)
let check_slo cells (s : Scenario.slo) =
  let name = "slo " ^ Scenario.slo_name s in
  match
    List.find_opt
      (fun c -> Scenario.policy_name c.policy = Scenario.policy_name s.Scenario.slo_policy)
      cells
  with
  | None ->
      { check_name = name; pass = false;
        detail =
          Printf.sprintf "policy %s not in the matrix"
            (Scenario.policy_name s.Scenario.slo_policy) }
  | Some cell -> (
      match cell.series with
      | None -> { check_name = name; pass = false; detail = "no telemetry series for this cell" }
      | Some series ->
          let w = Agg_obs.Series.window_size series in
          let n = Agg_obs.Series.windows series in
          let checked = ref 0 in
          let violation = ref None in
          for wi = 0 to n - 1 do
            if
              !violation = None
              && wi * w >= s.Scenario.slo_after
              && Agg_obs.Series.accesses series wi > 0
            then begin
              let value =
                match s.Scenario.slo_metric with
                | Scenario.Slo_hit_rate -> Some (Agg_obs.Series.hit_rate series wi)
                | Scenario.Slo_degraded_rate -> Some (Agg_obs.Series.degraded_rate series wi)
                | Scenario.Slo_p99_latency ->
                    (* a window of pure waits with no completed fetch has no
                       latency sample: nothing to check *)
                    Option.map
                      (fun us -> float_of_int us /. 1000.0)
                      (Agg_obs.Series.latency_quantile series wi 0.99)
              in
              match value with
              | None -> ()
              | Some v ->
                  incr checked;
                  let holds =
                    match s.Scenario.slo_bound with `Min b -> v >= b | `Max b -> v <= b
                  in
                  if not holds then violation := Some (wi, v)
            end
          done;
          (match !violation with
          | Some (wi, v) ->
              { check_name = name; pass = false;
                detail =
                  Printf.sprintf "window %d (accesses %d..%d): %s=%s" wi (wi * w)
                    (((wi + 1) * w) - 1)
                    (Scenario.slo_metric_name s.Scenario.slo_metric)
                    (value_str v) }
          | None ->
              { check_name = name; pass = true;
                detail = Printf.sprintf "%d windows checked" !checked }))

(* --- the executor ---------------------------------------------------------- *)

let run ?(jobs = 1) ?events_cap ?scope (t : Scenario.t) =
  match Scenario.validate t with
  | exception Invalid_argument msg -> Error msg
  | () -> (
      match load_trace ?events_cap t with
      | Error _ as e -> e
      | Ok trace ->
          let run_one policy =
            match Agg_obs.Scope.profiler scope with
            | None -> run_cell t trace policy
            | Some r ->
                Agg_obs.Span.record r ~cat:"scenario"
                  (Printf.sprintf "%s/%s" t.Scenario.name (Scenario.policy_name policy))
                  (fun () -> run_cell t trace policy)
          in
          let cells = Pool.map ~jobs run_one t.Scenario.policies in
          let run_cells jobs = Pool.map ~jobs (run_cell t trace) t.Scenario.policies in
          let invariant_check = function
            | Scenario.Conservation -> check_conservation t cells
            | Scenario.Belady_bound -> check_belady t trace cells
            | Scenario.G1_equals_lru -> check_g1_lru t trace
            | Scenario.Jobs_invariance -> check_jobs_invariance run_cells
            | Scenario.Every_request_served -> check_every_request_served t cells
          in
          let checks =
            List.map invariant_check t.Scenario.invariants
            @ List.map (check_expectation cells) t.Scenario.expectations
            @ List.map (check_slo cells) t.Scenario.slos
          in
          let pass = List.for_all (fun (c : check) -> c.pass) checks in
          let ok = if t.Scenario.expect_violation then not pass else pass in
          Ok { scenario = t; events = Trace.length trace; cells; checks; pass; ok })
