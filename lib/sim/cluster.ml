module Scheme = Agg_system.Scheme
module Fleet = Agg_system.Fleet
module Cluster_sim = Agg_cluster.Cluster
module Plan = Agg_faults.Plan
module Counters = Agg_faults.Counters

let default_node_counts = [ 5 ]
let default_node_loss_rates = [ 0.0; 0.1; 0.2; 0.3 ]
let default_schemes = [ Scheme.plain_lru; Scheme.aggregating () ]
let default_replica_counts = [ 1; 3 ]

type point = {
  scheme : string;
  nodes : int;
  replicas : int;
  placement : string;
  node_loss : float;
  hit_rate : float;
  mean_latency : float;
  served : int;
  routed : int;
  failovers : int;
  degraded : int;
}

(* Independent per-node outage windows: the per-cell seed is fixed, the
   per-node independence comes from Cluster's seed derivation. *)
let node_kill_plan node_loss =
  if node_loss <= 0.0 then Plan.none
  else
    {
      Plan.none with
      Plan.seed = 23;
      outage_period = 1000;
      outage_rate = node_loss;
      outage_length = 400;
    }

let cell_config ~nodes ~replicas ~placement ~scheme ~node_loss =
  {
    Cluster_sim.default_config with
    Cluster_sim.nodes;
    replicas;
    metadata = placement;
    client_scheme = scheme;
    node_scheme = scheme;
    faults = node_kill_plan node_loss;
  }

let sweep ?(node_counts = default_node_counts) ?(node_loss_rates = default_node_loss_rates)
    ?(schemes = default_schemes) ?(replica_counts = default_replica_counts)
    ?(placements = Cluster_sim.placements) ?(profile = Agg_workload.Profile.server)
    (runner : Experiment.Runner.t) =
  let settings = runner.Experiment.Runner.settings in
  let trace = Trace_store.get ~settings profile in
  let rows =
    List.concat_map
      (fun nodes ->
        List.concat_map
          (fun scheme ->
            List.concat_map
              (fun replicas ->
                List.map (fun placement -> (nodes, scheme, replicas, placement)) placements)
              replica_counts)
          schemes)
      node_counts
  in
  let span_label (nodes, scheme, replicas, placement) node_loss =
    Printf.sprintf "cluster/%s/n%d/k%d/%s/%s/p%g" profile.Agg_workload.Profile.name nodes replicas
      (Cluster_sim.placement_name placement)
      (Scheme.name scheme) node_loss
  in
  Experiment.grid ?profiler:(Experiment.Runner.profiler runner) ~span_label ~settings ~rows
    ~cols:node_loss_rates (fun (nodes, scheme, replicas, placement) node_loss ->
      let config = cell_config ~nodes ~replicas ~placement ~scheme ~node_loss in
      let r = Cluster_sim.run config trace in
      {
        scheme = Scheme.name scheme;
        nodes;
        replicas;
        placement = Cluster_sim.placement_name placement;
        node_loss;
        hit_rate = 100.0 *. Cluster_sim.client_hit_rate r;
        mean_latency = r.Cluster_sim.mean_latency;
        served = r.Cluster_sim.server_requests;
        routed = r.Cluster_sim.routed_fetches;
        failovers = r.Cluster_sim.failovers;
        degraded = r.Cluster_sim.faults.Counters.degraded_fetches;
      })
  |> List.concat_map snd |> List.map snd

let degraded_reduction points =
  let group = Cluster_sim.placement_name Cluster_sim.Replicated_with_group in
  let agg = List.filter (fun p -> p.scheme <> "lru" && p.placement = group) points in
  match agg with
  | [] -> None
  | _ ->
      let max_loss = List.fold_left (fun acc p -> Float.max acc p.node_loss) 0.0 agg in
      let at_max = List.filter (fun p -> Float.equal p.node_loss max_loss) agg in
      let ks = List.sort_uniq compare (List.map (fun p -> p.replicas) at_max) in
      let sum k =
        List.fold_left (fun acc p -> if p.replicas = k then acc + p.degraded else acc) 0 at_max
      in
      (match (ks, List.rev ks) with
      | k_min :: _, k_max :: _ when k_min <> k_max -> Some (sum k_min, sum k_max)
      | _ -> None)

let fleet_equivalent ?(profile = Agg_workload.Profile.server) (runner : Experiment.Runner.t) =
  let settings = runner.Experiment.Runner.settings in
  let trace = Trace_store.get ~settings profile in
  (* a hostile plan covering every fault class Fleet models *)
  let faults = { Plan.default with Plan.crash_rate = 0.002 } in
  let fleet_r = Fleet.run { Fleet.default_config with Fleet.faults } trace in
  let cluster_r =
    Cluster_sim.run { Cluster_sim.default_config with Cluster_sim.faults } trace
  in
  Cluster_sim.fleet_view cluster_r = fleet_r

let run ?(node_counts = default_node_counts) ?node_loss_rates ?schemes ?replica_counts ?placements
    ?(profile = Agg_workload.Profile.server) runner =
  let points =
    sweep ~node_counts ?node_loss_rates ?schemes ?replica_counts ?placements ~profile runner
  in
  let front_nodes = match node_counts with n :: _ -> n | [] -> 5 in
  let group = Cluster_sim.placement_name Cluster_sim.Replicated_with_group in
  let shown =
    List.filter (fun p -> p.nodes = front_nodes && p.placement = group) points
  in
  let labels =
    List.sort_uniq compare (List.map (fun p -> Printf.sprintf "%s/k%d" p.scheme p.replicas) shown)
  in
  let series value =
    List.map
      (fun label ->
        {
          Experiment.label;
          points =
            List.filter_map
              (fun p ->
                if Printf.sprintf "%s/k%d" p.scheme p.replicas = label then
                  Some (p.node_loss, value p)
                else None)
              shown;
        })
      labels
  in
  let name = profile.Agg_workload.Profile.name in
  {
    Experiment.id = "cluster";
    title =
      Printf.sprintf
        "Sharded cluster under node loss (%d nodes, replicated metadata): replication keeps groups \
         flowing"
        front_nodes;
    panels =
      [
        {
          Experiment.name = Printf.sprintf "%s hit rate" name;
          x_label = "per-node loss rate";
          y_label = "client hit rate (%)";
          series = series (fun p -> p.hit_rate);
        };
        {
          Experiment.name = Printf.sprintf "%s latency" name;
          x_label = "per-node loss rate";
          y_label = "mean access latency (ms)";
          series = series (fun p -> p.mean_latency);
        };
      ];
  }

let json_of_points ~fleet_match points =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"sweep\": \"cluster\",\n  \"points\": [\n";
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"scheme\": \"%s\", \"nodes\": %d, \"replicas\": %d, \"placement\": \"%s\", \
            \"node_loss\": %g, \"hit_rate_pct\": %.2f, \"mean_latency_ms\": %.3f, \"served\": %d, \
            \"routed\": %d, \"failovers\": %d, \"degraded\": %d}%s\n"
           p.scheme p.nodes p.replicas p.placement p.node_loss p.hit_rate p.mean_latency p.served
           p.routed p.failovers p.degraded
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string buf "  ],\n";
  let all_served =
    List.for_all (fun p -> p.routed + p.degraded = p.served) points
  in
  Buffer.add_string buf
    (Printf.sprintf "  \"matches_fleet_at_n1_k1\": %b,\n" fleet_match);
  Buffer.add_string buf (Printf.sprintf "  \"every_request_served\": %b,\n" all_served);
  (match degraded_reduction points with
  | Some (k1, kmax) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"degraded_at_max_loss_k_min\": %d,\n" k1);
      Buffer.add_string buf
        (Printf.sprintf "  \"degraded_at_max_loss_k_max\": %d,\n" kmax);
      Buffer.add_string buf
        (Printf.sprintf "  \"replication_reduces_degradation\": %b\n" (kmax < k1))
  | None -> Buffer.add_string buf "  \"replication_reduces_degradation\": null\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf
