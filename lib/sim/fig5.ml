module Successor_list = Agg_successor.Successor_list

let default_capacities = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

(* Streams the file sequence through per-file successor lists: each event
   with a predecessor first tests the predecessor's list, then updates it. *)
let miss_probability ?(obs = Agg_obs.Sink.noop) ~policy ~capacity files =
  let lists : (int, Successor_list.t) Hashtbl.t = Hashtbl.create 4096 in
  let list_for file =
    match Hashtbl.find_opt lists file with
    | Some l -> l
    | None ->
        let l = Successor_list.create ~capacity ~policy in
        Hashtbl.replace lists file l;
        l
  in
  let tested = ref 0 in
  let missed = ref 0 in
  let prev = ref None in
  Array.iter
    (fun file ->
      (match !prev with
      | Some p ->
          let l = list_for p in
          incr tested;
          if not (Successor_list.mem l file) then incr missed;
          Successor_list.observe l file;
          if Agg_obs.Sink.enabled obs then
            Agg_obs.Sink.emit obs (Agg_obs.Event.Successor_update { prev = p; next = file })
      | None -> ());
      prev := Some file)
    files;
  Agg_util.Stats.ratio !missed !tested

let oracle_miss_probability files =
  let oracle = Agg_successor.Oracle.create () in
  let tested = ref 0 in
  let missed = ref 0 in
  let prev = ref None in
  Array.iter
    (fun file ->
      (match !prev with
      | Some p ->
          incr tested;
          if not (Agg_successor.Oracle.mem oracle ~file:p ~successor:file) then incr missed;
          Agg_successor.Oracle.observe oracle ~file:p ~successor:file
      | None -> ());
      prev := Some file)
    files;
  Agg_util.Stats.ratio !missed !tested

let panel ?(capacities = default_capacities) ~(runner : Experiment.Runner.t) profile =
  let settings = runner.Experiment.Runner.settings in
  let files = Trace_store.files ~settings profile in
  let fixed_oracle = oracle_miss_probability files in
  let span_label (policy_label, _) capacity =
    Printf.sprintf "fig5/%s/%s/k%d" profile.Agg_workload.Profile.name policy_label capacity
  in
  let sink policy_label capacity =
    Experiment.Runner.sink runner (span_label (policy_label, ()) capacity)
  in
  let online =
    Experiment.grid ?profiler:(Experiment.Runner.profiler runner) ~span_label ~settings
      ~rows:[ ("lru", Successor_list.Recency); ("lfu", Successor_list.Frequency) ]
      ~cols:capacities
      (fun (policy_label, policy) capacity ->
        miss_probability ~obs:(sink policy_label capacity) ~policy ~capacity files)
    |> List.map (fun ((label, _), points) ->
           {
             Experiment.label;
             points = List.map (fun (capacity, y) -> (float_of_int capacity, y)) points;
           })
  in
  let series =
    {
      Experiment.label = "oracle";
      points = List.map (fun c -> (float_of_int c, fixed_oracle)) capacities;
    }
    :: online
  in
  {
    Experiment.name = profile.Agg_workload.Profile.name;
    x_label = "successors tracked";
    y_label = "P(miss future successor)";
    series;
  }

let run (runner : Experiment.Runner.t) =
  let panel_for profile = panel ~runner profile in
  {
    Experiment.id = "fig5";
    title = "Probability of successor-list replacement evicting a future successor";
    panels = [ panel_for Agg_workload.Profile.workstation; panel_for Agg_workload.Profile.server ];
  }

