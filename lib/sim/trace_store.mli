(** A process-wide memo table of generated synthetic traces, keyed by
    [(profile, seed, events)].

    Every figure, ablation and summary of a run replays the same handful
    of traces; before this store existed each of them regenerated its
    trace from scratch — dozens of identical generator runs per harness
    invocation. The store generates each distinct trace exactly once and
    hands the {e same} trace value to every caller ([get] is physically
    equal across calls with equal keys).

    Thread-safety: safe to call from any domain, including from inside
    {!Agg_util.Pool} workers. Generation of a given key happens once;
    concurrent requesters of that key block until it is ready, while
    requests for other keys proceed in parallel.

    Shared traces are {e immutable after generation}: [Agg_trace.Trace.t]
    offers no mutation beyond [append]/[add_access], and nothing in this
    repository appends to a generated trace — callers must preserve that
    (treat stored traces and the arrays returned by [files] as
    read-only). Mutating either is a programming error that would corrupt
    every other cell of the run. *)

val get :
  settings:Experiment.settings -> Agg_workload.Profile.t -> Agg_trace.Trace.t
(** [get ~settings profile] is the trace for
    [(profile, settings.seed, settings.events)], generated on first
    request via {!Agg_workload.Generator.generate} and memoized
    thereafter. [settings.warmup] and [settings.jobs] are not part of
    the key. *)

val files :
  settings:Experiment.settings -> Agg_workload.Profile.t -> Agg_trace.File_id.t array
(** The bare file-id sequence of {!get}, memoized alongside it (one
    shared array per key — do not mutate). *)

val size : unit -> int
(** Number of distinct traces currently memoized. *)

val reset : unit -> unit
(** Drop every memoized trace (for tests and memory reclamation). Must
    not be called concurrently with {!get}/{!files}. *)
