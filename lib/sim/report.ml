type check = { id : string; claim : string; measured : string; pass : bool }

let find_series panel label =
  List.find_opt (fun s -> s.Experiment.label = label) panel.Experiment.series

let value_exn panel label x =
  match find_series panel label with
  | Some s -> (
      match Experiment.series_value s x with
      | Some y -> y
      | None -> invalid_arg (Printf.sprintf "Report: series %s has no x=%g" label x))
  | None -> invalid_arg (Printf.sprintf "Report: no series %s" label)

let panel_named fig name =
  match List.find_opt (fun p -> p.Experiment.name = name) fig.Experiment.panels with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Report: no panel %s" name)

(* --- Fig. 3 checks ------------------------------------------------- *)

let fig3_checks fig3 =
  let reduction panel g x =
    let lru = value_exn panel "lru" x in
    let grouped = value_exn panel (Printf.sprintf "g%d" g) x in
    if lru = 0.0 then 0.0 else 100.0 *. (lru -. grouped) /. lru
  in
  let server = panel_named fig3 "server" in
  let write = panel_named fig3 "write" in
  let r_g2 = reduction server 2 300.0 in
  let r_g5 = reduction server 5 300.0 in
  let r_g10 = reduction server 10 300.0 in
  let w_g5 = reduction write 5 300.0 in
  [
    {
      id = "fig3.server.g2";
      claim = "groups of 2-3 cut server-workload miss rate by over 40%";
      measured = Printf.sprintf "g2 reduction at cap 300 = %.1f%%" r_g2;
      pass = r_g2 >= 35.0;
    };
    {
      id = "fig3.server.g5";
      claim = "groups of 5+ cut server-workload miss rate by over 60%";
      measured = Printf.sprintf "g5 reduction at cap 300 = %.1f%%" r_g5;
      pass = r_g5 >= 50.0;
    };
    {
      id = "fig3.server.saturation";
      claim = "gains saturate around g=5 but larger groups do not hurt";
      measured = Printf.sprintf "g10 reduction = %.1f%% (g5 = %.1f%%)" r_g10 r_g5;
      pass = r_g10 >= r_g5 -. 5.0;
    };
    {
      id = "fig3.write.modest";
      claim = "the write workload shows the most modest (but positive) gains";
      measured = Printf.sprintf "write g5 reduction = %.1f%% < server g5 = %.1f%%" w_g5 r_g5;
      pass = w_g5 > 0.0 && w_g5 < r_g5;
    };
  ]

(* --- Fig. 4 checks ------------------------------------------------- *)

let fig4_checks fig4 =
  let checks_for name =
    let panel = panel_named fig4 name in
    let lru_large = value_exn panel "lru" 400.0 in
    let g5_large = value_exn panel "g5" 400.0 in
    let lru_small = value_exn panel "lru" 100.0 in
    let g5_small = value_exn panel "g5" 100.0 in
    [
      {
        id = Printf.sprintf "fig4.%s.collapse" name;
        claim = "LRU server hit rate collapses once the filter exceeds the server capacity";
        measured = Printf.sprintf "lru@400 = %.1f%% (vs lru@100 = %.1f%%)" lru_large lru_small;
        pass = lru_large < 10.0 && lru_large < lru_small /. 2.0;
      };
      {
        id = Printf.sprintf "fig4.%s.resilient" name;
        claim = "the aggregating cache keeps 30-60% hit rates where LRU fails";
        measured = Printf.sprintf "g5@400 = %.1f%%" g5_large;
        pass = g5_large >= 25.0;
      };
      {
        id = Printf.sprintf "fig4.%s.improves" name;
        claim = "g5 improves on LRU at small filters too (20%+ relative)";
        measured = Printf.sprintf "g5@100 = %.1f%% vs lru@100 = %.1f%%" g5_small lru_small;
        pass = g5_small >= lru_small *. 1.15;
      };
    ]
  in
  List.concat_map checks_for [ "workstation"; "users"; "server" ]

(* --- Fig. 5 checks ------------------------------------------------- *)

let fig5_checks fig5 =
  let checks_for name =
    let panel = panel_named fig5 name in
    let caps = [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ] in
    let lru_beats_lfu =
      List.for_all (fun c -> value_exn panel "lru" c <= value_exn panel "lfu" c +. 0.005) caps
    in
    let lru4 = value_exn panel "lru" 4.0 in
    let oracle = value_exn panel "oracle" 4.0 in
    [
      {
        id = Printf.sprintf "fig5.%s.recency" name;
        claim = "recency (LRU) successor lists beat frequency (LFU) at every capacity";
        measured = Printf.sprintf "lru<=lfu at all capacities: %b" lru_beats_lfu;
        pass = lru_beats_lfu;
      };
      {
        id = Printf.sprintf "fig5.%s.small-lists" name;
        claim = "a small list (~4) closely matches the oracle";
        measured = Printf.sprintf "lru@4 = %.3f vs oracle = %.3f" lru4 oracle;
        pass = lru4 -. oracle <= 0.08;
      };
    ]
  in
  List.concat_map checks_for [ "workstation"; "server" ]

(* --- Fig. 7 checks ------------------------------------------------- *)

let fig7_checks fig7 =
  let panel = panel_named fig7 "all workloads" in
  let monotone label =
    match find_series panel label with
    | None -> false
    | Some s ->
        let ys = List.map snd s.Experiment.points in
        let rec non_decreasing = function
          | a :: (b :: _ as rest) -> a <= b +. 0.15 && non_decreasing rest
          | _ -> true
        in
        non_decreasing ys
  in
  let at label l = value_exn panel label l in
  let server1 = at "server" 1.0 in
  let all_monotone = List.for_all monotone [ "users"; "write"; "server"; "workstation" ] in
  let server_lowest =
    List.for_all (fun w -> server1 <= at w 1.0) [ "users"; "write"; "workstation" ]
  in
  [
    {
      id = "fig7.monotone";
      claim = "successor entropy rises with successor sequence length for all workloads";
      measured = Printf.sprintf "monotone(all) = %b" all_monotone;
      pass = all_monotone;
    };
    {
      id = "fig7.server.sub-bit";
      claim = "the server workload is under one bit at length 1";
      measured = Printf.sprintf "server@1 = %.2f bits" server1;
      pass = server1 < 1.0;
    };
    {
      id = "fig7.server.most-predictable";
      claim = "the server workload is the most predictable of the four";
      measured = Printf.sprintf "server@1 = %.2f is the minimum: %b" server1 server_lowest;
      pass = server_lowest;
    };
  ]

(* --- Fig. 8 checks ------------------------------------------------- *)

let fig8_checks fig8 =
  let checks_for name =
    let panel = panel_named fig8 name in
    let at label l = value_exn panel label l in
    let tiny_hurts = at "10" 1.0 > at "1" 1.0 -. 0.05 in
    let large_helps =
      at "1000" 1.0 <= at "50" 1.0 +. 0.05 && at "500" 1.0 <= at "50" 1.0 +. 0.05
    in
    [
      {
        id = Printf.sprintf "fig8.%s.tiny-filter" name;
        claim = "a tiny intervening cache (10) reduces predictability";
        measured = Printf.sprintf "H@10 = %.2f vs H@1 = %.2f" (at "10" 1.0) (at "1" 1.0);
        pass = tiny_hurts;
      };
      {
        id = Printf.sprintf "fig8.%s.large-filter" name;
        claim = "large filters (500-1000) yield a more predictable miss stream than 50";
        measured =
          Printf.sprintf "H@1000 = %.2f, H@500 = %.2f, H@50 = %.2f" (at "1000" 1.0) (at "500" 1.0)
            (at "50" 1.0);
        pass = large_helps;
      };
    ]
  in
  List.concat_map checks_for [ "write"; "users" ]

let run_all ?(settings = Experiment.default_settings) () =
  let runner = Experiment.Runner.create ~settings () in
  let fig3 = Fig3.run runner in
  let fig4 = Fig4.run runner in
  let fig5 = Fig5.run runner in
  let fig7 = Fig7.run runner in
  let fig8 = Fig8.run runner in
  fig3_checks fig3 @ fig4_checks fig4 @ fig5_checks fig5 @ fig7_checks fig7 @ fig8_checks fig8

let table checks =
  let open Agg_util in
  let t =
    Table.create ~title:"Paper-vs-measured checks" ~columns:[ "check"; "claim"; "measured"; "ok" ]
  in
  List.iter
    (fun c -> Table.add_row t [ c.id; c.claim; c.measured; (if c.pass then "PASS" else "FAIL") ])
    checks;
  t

let all_pass checks = List.for_all (fun c -> c.pass) checks
