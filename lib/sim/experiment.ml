type series = { label : string; points : (float * float) list }

type panel = { name : string; x_label : string; y_label : string; series : series list }

type figure = { id : string; title : string; panels : panel list }

type settings = { events : int; seed : int; warmup : int; jobs : int }

let default_settings =
  { events = 60_000; seed = 7; warmup = 0; jobs = Agg_util.Pool.default_jobs () }

let quick_settings = { default_settings with events = 6_000 }

module Runner = struct
  type nonrec t = { settings : settings; scope : Agg_obs.Scope.t option }

  let create ?jobs ?scope ?(settings = default_settings) () =
    let settings = match jobs with None -> settings | Some jobs -> { settings with jobs } in
    { settings; scope }

  let default = create ()
  let profiler t = Agg_obs.Scope.profiler t.scope
  let sink t label = Agg_obs.Scope.sink_for t.scope label
end

let grid ?profiler ?span_label ~settings ~rows ~cols f =
  let eval =
    match profiler with
    | None -> f
    | Some recorder ->
        let label = match span_label with Some l -> l | None -> fun _ _ -> "cell" in
        fun r c -> Agg_obs.Span.record recorder (label r c) (fun () -> f r c)
  in
  let cells = List.concat_map (fun r -> List.map (fun c -> (r, c)) cols) rows in
  let ys = Agg_util.Pool.map ~jobs:settings.jobs (fun (r, c) -> eval r c) cells in
  let width = List.length cols in
  let rec chunk acc row w = function
    | ys when w = 0 -> chunk (List.rev row :: acc) [] width ys
    | y :: ys -> chunk acc (y :: row) (w - 1) ys
    | [] -> List.rev acc
  in
  let chunks = if width = 0 then List.map (fun _ -> []) rows else chunk [] [] width ys in
  List.map2 (fun r ys_row -> (r, List.combine cols ys_row)) rows chunks

let series_value s x =
  Option.map snd (List.find_opt (fun (px, _) -> Float.equal px x) s.points)

let xs_of_panel panel =
  let all = List.concat_map (fun s -> List.map fst s.points) panel.series in
  List.sort_uniq compare all

let panel_table ~figure_id panel =
  let open Agg_util in
  let title = Printf.sprintf "%s — %s (%s vs %s)" figure_id panel.name panel.y_label panel.x_label in
  let columns = panel.x_label :: List.map (fun s -> s.label) panel.series in
  let table = Table.create ~title ~columns in
  List.iter
    (fun x ->
      let cells =
        Printf.sprintf "%g" x
        :: List.map
             (fun s ->
               match series_value s x with
               | Some y -> Printf.sprintf "%.2f" y
               | None -> "-")
             panel.series
      in
      Table.add_row table cells)
    (xs_of_panel panel);
  table

let render_figure fig =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "### %s: %s\n" fig.id fig.title);
  List.iter
    (fun panel -> Buffer.add_string buf (Agg_util.Table.render (panel_table ~figure_id:fig.id panel)))
    fig.panels;
  Buffer.contents buf

let print_figure fig = print_string (render_figure fig)
