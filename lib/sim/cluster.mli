(** The cluster sweep: client hit rate and mean latency as per-node loss
    grows, across node count x replication factor x metadata placement,
    over the full {!Agg_cluster.Cluster} simulator.

    "Node loss" is modelled as independent per-node outage windows
    (period 1000 accesses, 400 accesses down when an epoch is faulty);
    the sweep's loss rate is the probability a given node's epoch opens
    with that node dark. With [k = 1] a dark shard can only degrade to
    the store; with [k >= 2] the resilience budget fails over to the
    next group member, so the cluster keeps serving groups — the
    replication claim the bench section checks. Loss [0.0] is the
    healthy network and matches the fault-free build byte-for-byte. *)

val default_node_counts : int list
(** [[5]] — apothik's cluster size. *)

val default_node_loss_rates : float list
(** 0, 0.1, 0.2, 0.3. *)

val default_schemes : Agg_system.Scheme.t list
(** Plain LRU and aggregating g = 5, applied to client and node caches. *)

val default_replica_counts : int list
(** [[1; 3]]. *)

val node_kill_plan : float -> Agg_faults.Plan.config
(** The per-node outage plan the sweep builds from a loss rate: seed 23,
    1000-access epochs, 400 accesses dark when an epoch is faulty.
    [node_kill_plan 0.0] is {!Agg_faults.Plan.none}. *)

type point = {
  scheme : string;
  nodes : int;
  replicas : int;
  placement : string;  (** {!Agg_cluster.Cluster.placement_name} *)
  node_loss : float;
  hit_rate : float;  (** client hit rate, percent *)
  mean_latency : float;  (** ms per access *)
  served : int;  (** server requests (all of them are served) *)
  routed : int;
  failovers : int;
  degraded : int;
}

val sweep :
  ?node_counts:int list ->
  ?node_loss_rates:float list ->
  ?schemes:Agg_system.Scheme.t list ->
  ?replica_counts:int list ->
  ?placements:Agg_cluster.Cluster.metadata_placement list ->
  ?profile:Agg_workload.Profile.t ->
  Experiment.Runner.t ->
  point list
(** One point per (nodes, scheme, k, placement) x loss-rate cell through
    {!Experiment.grid} (spans named
    ["cluster/<workload>/n<N>/k<K>/<placement>/<scheme>/p<loss>"]).
    Every cell builds its own fault plan from its coordinates, so the
    results are deterministic for any [jobs] value. Default workload:
    [server]. *)

val degraded_reduction : point list -> (int * int) option
(** [(k1, kmax)] — summed degraded fetches at the sweep's highest loss
    rate for the aggregating scheme under [Replicated_with_group], at
    the smallest and largest replica count present. [kmax < k1] is the
    "replication keeps serving" verdict. *)

val fleet_equivalent : ?profile:Agg_workload.Profile.t -> Experiment.Runner.t -> bool
(** Runs the degenerate cluster (N = 1, k = 1, [Owner_node], no churn)
    and {!Agg_system.Fleet} with the same schemes, hostile fault plan
    and trace, and compares {!Agg_cluster.Cluster.fleet_view} field for
    field — the byte-identity guarantee, checked end to end. *)

val run :
  ?node_counts:int list ->
  ?node_loss_rates:float list ->
  ?schemes:Agg_system.Scheme.t list ->
  ?replica_counts:int list ->
  ?placements:Agg_cluster.Cluster.metadata_placement list ->
  ?profile:Agg_workload.Profile.t ->
  Experiment.Runner.t ->
  Experiment.figure
(** The sweep as a two-panel figure (hit rate and latency vs node loss)
    with one series per (scheme, k) under [Replicated_with_group] at the
    first node count. *)

val json_of_points : fleet_match:bool -> point list -> string
(** The [BENCH_cluster.json] document: every point, the
    [fleet_match] degenerate-case verdict, the served = routed +
    degraded identity, and the {!degraded_reduction} headline. *)
