let default_capacities = [ 250; 500; 1_000; 2_000; 4_000 ]
let default_verdict_capacity = 1_000
let policies = [ "lru"; "landlord"; "bundle"; "g5" ]

type cell = {
  policy : string;
  profile : string;
  capacity : int;
  byte_hit_rate : float;
  cost_saved_rate : float;
  total_cost : int;
}

(* Every policy is charged against the same denominators, computed once
   per profile from the weight table alone. *)
let totals ~weight_of files =
  let bytes = ref 0 and cost = ref 0 in
  Array.iter
    (fun file ->
      let w : Agg_cache.Policy.weight = weight_of file in
      bytes := !bytes + w.Agg_cache.Policy.size;
      cost := !cost + w.Agg_cache.Policy.cost)
    files;
  (!bytes, !cost)

let cell_of_weighted ~policy ~profile ~capacity ~cost_accessed
    (w : Agg_cache.Cache.weighted_stats) =
  {
    policy;
    profile;
    capacity;
    byte_hit_rate = Agg_util.Stats.ratio w.Agg_cache.Cache.bytes_hit w.Agg_cache.Cache.bytes_accessed;
    cost_saved_rate =
      Agg_util.Stats.ratio (cost_accessed - w.Agg_cache.Cache.cost_fetched) cost_accessed;
    total_cost = w.Agg_cache.Cache.cost_fetched + w.Agg_cache.Cache.cost_prefetched;
  }

let run_facade cache files =
  Array.iter (fun file -> ignore (Agg_cache.Cache.access cache file)) files;
  Agg_cache.Cache.weighted_stats cache

(* The bundle policy served the way an aggregating client would: on a
   miss the predicted retrieval group arrives as one Landlord bundle, the
   anchor's cost counting as the demand fetch and the speculative
   members' costs as prefetch spend. *)
let run_bundle ~weight_of ~capacity ~group_size files =
  let tracker =
    let c = Agg_core.Config.default in
    Agg_successor.Tracker.create ~capacity:c.Agg_core.Config.successor_capacity
      ~policy:c.Agg_core.Config.metadata_policy ()
  in
  let b = Agg_baselines.Bundle.create ~capacity in
  let bytes_accessed = ref 0 and bytes_hit = ref 0 in
  let cost_fetched = ref 0 and cost_prefetched = ref 0 in
  Array.iter
    (fun file ->
      Agg_successor.Tracker.observe tracker file;
      let w : Agg_cache.Policy.weight = weight_of file in
      bytes_accessed := !bytes_accessed + w.Agg_cache.Policy.size;
      if Agg_baselines.Bundle.mem b file then begin
        bytes_hit := !bytes_hit + w.Agg_cache.Policy.size;
        Agg_baselines.Bundle.promote b file;
        Agg_baselines.Bundle.charge b file ~cost:w.Agg_cache.Policy.cost
      end
      else begin
        cost_fetched := !cost_fetched + w.Agg_cache.Policy.cost;
        let group = Agg_core.Group_builder.build tracker ~group_size file in
        List.iter
          (fun m ->
            if m <> file && not (Agg_baselines.Bundle.mem b m) then
              cost_prefetched :=
                !cost_prefetched + (weight_of m).Agg_cache.Policy.cost)
          group;
        ignore (Agg_baselines.Bundle.request_bundle b ~weight_of group)
      end)
    files;
  {
    Agg_cache.Cache.bytes_accessed = !bytes_accessed;
    bytes_hit = !bytes_hit;
    cost_fetched = !cost_fetched;
    cost_prefetched = !cost_prefetched;
  }

let run_cell ~profile ~weight_of ~files ~cost_accessed policy capacity =
  let weighted =
    match policy with
    | "lru" -> run_facade (Agg_cache.Cache.create ~weight_of Agg_cache.Cache.Lru ~capacity) files
    | "landlord" ->
        run_facade
          (Agg_cache.Cache.of_policy ~weight_of
             (module Agg_baselines.Landlord)
             (Agg_baselines.Landlord.create ~capacity))
          files
    | "bundle" -> run_bundle ~weight_of ~capacity ~group_size:5 files
    | "g5" ->
        let config = Agg_core.Config.with_group_size 5 Agg_core.Config.default in
        let cache = Agg_core.Client_cache.create ~config ~weight_of ~capacity () in
        ignore (Agg_core.Client_cache.run_files cache files);
        let m = Agg_core.Client_cache.weighted_metrics cache in
        {
          Agg_cache.Cache.bytes_accessed = m.Agg_core.Metrics.bytes_accessed;
          bytes_hit = m.Agg_core.Metrics.bytes_hit;
          cost_fetched = m.Agg_core.Metrics.cost_fetched;
          cost_prefetched = m.Agg_core.Metrics.cost_prefetched;
        }
    | p -> invalid_arg (Printf.sprintf "Weighted.run_cell: unknown policy %S" p)
  in
  cell_of_weighted ~policy ~profile:profile.Agg_workload.Profile.name ~capacity ~cost_accessed
    weighted

let sweep_profile ?(capacities = default_capacities) ~(runner : Experiment.Runner.t) profile =
  let settings = runner.Experiment.Runner.settings in
  let files = Trace_store.files ~settings profile in
  let weight_of file = Agg_workload.Profile.weight_of profile file in
  let _, cost_accessed = totals ~weight_of files in
  let span_label policy capacity =
    Printf.sprintf "weighted/%s/%s/c%d" profile.Agg_workload.Profile.name policy capacity
  in
  Experiment.grid
    ?profiler:(Experiment.Runner.profiler runner)
    ~span_label ~settings ~rows:policies ~cols:capacities
    (run_cell ~profile ~weight_of ~files ~cost_accessed)
  |> List.concat_map (fun (_, cols) -> List.map snd cols)

let sweep ?capacities (runner : Experiment.Runner.t) =
  List.concat_map
    (fun profile -> sweep_profile ?capacities ~runner profile)
    Agg_workload.Profile.sized

let panel_pair ~profile cells =
  let series_of value =
    List.map
      (fun policy ->
        {
          Experiment.label = policy;
          points =
            List.filter_map
              (fun c ->
                if c.policy = policy && c.profile = profile then
                  Some (float_of_int c.capacity, value c)
                else None)
              cells;
        })
      policies
  in
  [
    {
      Experiment.name = profile ^ " (byte-weighted hit rate)";
      x_label = "cache capacity (size units)";
      y_label = "byte-weighted hit rate";
      series = series_of (fun c -> c.byte_hit_rate);
    };
    {
      Experiment.name = profile ^ " (total retrieval cost)";
      x_label = "cache capacity (size units)";
      y_label = "total retrieval cost";
      series = series_of (fun c -> float_of_int c.total_cost);
    };
  ]

let run ?capacities (runner : Experiment.Runner.t) =
  let cells = sweep ?capacities runner in
  {
    Experiment.id = "weighted";
    title = "Weighted caching: size/cost-aware policies vs the aggregating cache";
    panels =
      List.concat_map
        (fun p -> panel_pair ~profile:p.Agg_workload.Profile.name cells)
        Agg_workload.Profile.sized;
  }

type verdict = {
  v_profile : string;
  v_capacity : int;
  g5_cost : int;
  landlord_cost : int;
  g5_wins : bool;
}

let verdicts ?(capacity = default_verdict_capacity) (runner : Experiment.Runner.t) =
  List.map
    (fun profile ->
      let cells = sweep_profile ~capacities:[ capacity ] ~runner profile in
      let cost policy =
        match List.find_opt (fun c -> c.policy = policy) cells with
        | Some c -> c.total_cost
        | None -> assert false (* the sweep always evaluates every policy *)
      in
      let g5_cost = cost "g5" and landlord_cost = cost "landlord" in
      {
        v_profile = profile.Agg_workload.Profile.name;
        v_capacity = capacity;
        g5_cost;
        landlord_cost;
        g5_wins = g5_cost < landlord_cost;
      })
    Agg_workload.Profile.sized
