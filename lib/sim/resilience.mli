(** The resilience sweep: client hit rate and mean demand latency as the
    message-loss rate grows, for a plain LRU client versus an aggregating
    client (g = 5), over the full {!Agg_system.Path} simulator.

    The paper's claim extends naturally to hostile networks: the
    aggregating client makes {e fewer} round trips per access, so each
    injected loss costs it less — it retains a higher hit rate (its cache
    was filled by groups before the fault) and its latency grows more
    slowly. Loss rate [0.0] is the healthy network and matches the
    fault-free path byte-for-byte. *)

val default_loss_rates : float list
(** 0, 0.05, 0.1, 0.15, 0.2, 0.3. *)

val default_schemes : Agg_system.Scheme.t list
(** Plain LRU and aggregating g = 5. *)

type point = {
  scheme : string;  (** series label, e.g. ["lru"] / ["g5"] *)
  loss_rate : float;
  hit_rate : float;  (** client hit rate, percent *)
  mean_latency : float;  (** mean demand latency, ms *)
  timeouts : int;
  retries : int;
  degraded_fetches : int;
}

val sweep :
  ?loss_rates:float list ->
  ?schemes:Agg_system.Scheme.t list ->
  ?profile:Agg_workload.Profile.t ->
  Experiment.Runner.t ->
  point list
(** One point per (scheme, loss rate) cell, evaluated through
    {!Experiment.grid} under the runner's settings (and profiler, spans
    named ["resilience/<workload>/<scheme>/p<loss>"]). Each cell builds
    its own fault plan from the loss rate alone (no outages, slow links
    or crashes), so results are deterministic for any [jobs] value.
    Default workload: [server]. *)

val hit_rate_advantage : loss_rate:float -> point list -> float option
(** [g5 hit rate - lru hit rate] at exactly [loss_rate], when both
    schemes are present in the sweep. *)

val run :
  ?loss_rates:float list ->
  ?schemes:Agg_system.Scheme.t list ->
  ?profile:Agg_workload.Profile.t ->
  Experiment.Runner.t ->
  Experiment.figure
(** The sweep as a two-panel figure (hit rate and latency vs loss rate),
    rendered like every other figure. *)

val json_of_points : point list -> string
(** The [BENCH_faults.json] document: every point, plus the headline
    ["g5_beats_lru_at_10pct_loss"] verdict. *)
