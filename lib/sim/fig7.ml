let default_lengths = List.init 20 (fun i -> i + 1)

let figure ?(settings = Experiment.default_settings) ?(lengths = default_lengths) () =
  let profiles =
    [
      Agg_workload.Profile.users;
      Agg_workload.Profile.write;
      Agg_workload.Profile.server;
      Agg_workload.Profile.workstation;
    ]
  in
  let series =
    Experiment.grid ~settings ~rows:profiles ~cols:lengths (fun profile length ->
        Agg_entropy.Entropy.of_files ~length (Trace_store.files ~settings profile))
    |> List.map (fun (profile, points) ->
           {
             Experiment.label = profile.Agg_workload.Profile.name;
             points = List.map (fun (l, h) -> (float_of_int l, h)) points;
           })
  in
  {
    Experiment.id = "fig7";
    title = "Successor entropy vs successor sequence length";
    panels =
      [
        {
          Experiment.name = "all workloads";
          x_label = "successor sequence length";
          y_label = "successor entropy (bits)";
          series;
        };
      ];
  }
