let default_lengths = List.init 20 (fun i -> i + 1)

let run ?(lengths = default_lengths) (runner : Experiment.Runner.t) =
  let settings = runner.Experiment.Runner.settings in
  let profiles =
    [
      Agg_workload.Profile.users;
      Agg_workload.Profile.write;
      Agg_workload.Profile.server;
      Agg_workload.Profile.workstation;
    ]
  in
  let span_label profile length =
    Printf.sprintf "fig7/%s/l%d" profile.Agg_workload.Profile.name length
  in
  let series =
    Experiment.grid ?profiler:(Experiment.Runner.profiler runner) ~span_label ~settings
      ~rows:profiles ~cols:lengths (fun profile length ->
        Agg_entropy.Entropy.of_files ~length (Trace_store.files ~settings profile))
    |> List.map (fun (profile, points) ->
           {
             Experiment.label = profile.Agg_workload.Profile.name;
             points = List.map (fun (l, h) -> (float_of_int l, h)) points;
           })
  in
  {
    Experiment.id = "fig7";
    title = "Successor entropy vs successor sequence length";
    panels =
      [
        {
          Experiment.name = "all workloads";
          x_label = "successor sequence length";
          y_label = "successor entropy (bits)";
          series;
        };
      ];
  }

