let default_capacities = [ 100; 200; 300; 400; 600; 800 ]

let client_fetches ~trace ~config ~capacity =
  let cache = Agg_core.Client_cache.create ~config ~capacity () in
  float_of_int (Agg_core.Client_cache.run cache trace).Agg_core.Metrics.demand_fetches

let sweep_series ~settings ~trace ~capacities configs =
  Experiment.grid ~settings ~rows:configs ~cols:capacities (fun (_, config) capacity ->
      client_fetches ~trace ~config ~capacity)
  |> List.map (fun ((label, _), points) ->
         {
           Experiment.label;
           points = List.map (fun (capacity, y) -> (float_of_int capacity, y)) points;
         })

let client_panel ~settings ~name ~trace ~capacities configs =
  {
    Experiment.name;
    x_label = "cache capacity (files)";
    y_label = "demand fetches";
    series = sweep_series ~settings ~trace ~capacities configs;
  }

let member_position ?(settings = Experiment.default_settings) ?(capacities = default_capacities)
    profile =
  let trace = Trace_store.get ~settings profile in
  let base = Agg_core.Config.default in
  client_panel ~settings
    ~name:(profile.Agg_workload.Profile.name ^ " (A1 member position)")
    ~trace ~capacities
    [
      ("g5-tail", { base with member_position = Agg_core.Config.Tail });
      ("g5-head", { base with member_position = Agg_core.Config.Head });
      ("lru", Agg_core.Config.with_group_size 1 base);
    ]

let metadata_policy ?(settings = Experiment.default_settings) ?(capacities = default_capacities)
    profile =
  let trace = Trace_store.get ~settings profile in
  let base = Agg_core.Config.default in
  client_panel ~settings
    ~name:(profile.Agg_workload.Profile.name ^ " (A2 metadata policy)")
    ~trace ~capacities
    [
      ("g5-recency", { base with metadata_policy = Agg_successor.Successor_list.Recency });
      ("g5-frequency", { base with metadata_policy = Agg_successor.Successor_list.Frequency });
    ]

let successor_capacity ?(settings = Experiment.default_settings)
    ?(capacities = [ 1; 2; 4; 8; 16 ]) profile =
  let trace = Trace_store.get ~settings profile in
  let cache_capacity = 300 in
  let points =
    Agg_util.Pool.map ~jobs:settings.Experiment.jobs
      (fun successor_capacity ->
        let config = { Agg_core.Config.default with successor_capacity } in
        (float_of_int successor_capacity, client_fetches ~trace ~config ~capacity:cache_capacity))
      capacities
  in
  {
    Experiment.name = profile.Agg_workload.Profile.name ^ " (A3 successor capacity)";
    x_label = "successor-list capacity";
    y_label = "demand fetches (cache = 300)";
    series = [ { Experiment.label = "g5"; points } ];
  }

let baselines ?(settings = Experiment.default_settings) ?(capacities = default_capacities) profile =
  let trace = Trace_store.get ~settings profile in
  let agg =
    sweep_series ~settings ~trace ~capacities
      [
        ("lru", Agg_core.Config.with_group_size 1 Agg_core.Config.default);
        ("agg-g5", Agg_core.Config.default);
      ]
  in
  let prob_graph =
    Experiment.grid ~settings
      ~rows:[ ("probgraph-0.1", 0.1); ("probgraph-0.25", 0.25) ]
      ~cols:capacities
      (fun (_, threshold) capacity ->
        let pg = Agg_baselines.Prob_graph.create ~threshold ~capacity () in
        let m = Agg_baselines.Prob_graph.run pg trace in
        float_of_int m.Agg_core.Metrics.demand_fetches)
    |> List.map (fun ((label, _), points) ->
           {
             Experiment.label;
             points = List.map (fun (capacity, y) -> (float_of_int capacity, y)) points;
           })
  in
  {
    Experiment.name = profile.Agg_workload.Profile.name ^ " (A4 baselines)";
    x_label = "cache capacity (files)";
    y_label = "demand fetches";
    series = agg @ prob_graph;
  }

let server_hit_rate ~trace ~scheme ~cooperative filter_capacity =
  let sim =
    Agg_core.Server_cache.create ~cooperative ~filter_kind:Agg_cache.Cache.Lru ~filter_capacity
      ~server_capacity:Fig4.default_server_capacity ~scheme ()
  in
  100.0 *. Agg_core.Metrics.server_hit_rate (Agg_core.Server_cache.run sim trace)

let hit_rate_panel ~settings ~name ~trace ~filter_capacities rows =
  let series =
    Experiment.grid ~settings ~rows ~cols:filter_capacities
      (fun (_, scheme, cooperative) filter_capacity ->
        server_hit_rate ~trace ~scheme ~cooperative filter_capacity)
    |> List.map (fun ((label, _, _), points) ->
           {
             Experiment.label;
             points = List.map (fun (capacity, y) -> (float_of_int capacity, y)) points;
           })
  in
  { Experiment.name; x_label = "filter capacity (files)"; y_label = "server hit rate (%)"; series }

let cooperative ?(settings = Experiment.default_settings)
    ?(filter_capacities = Fig4.default_filter_capacities) profile =
  let trace = Trace_store.get ~settings profile in
  let scheme = Agg_core.Server_cache.Aggregating Agg_core.Config.default in
  hit_rate_panel ~settings
    ~name:(profile.Agg_workload.Profile.name ^ " (A5 cooperation)")
    ~trace ~filter_capacities
    [ ("g5-miss-stream", scheme, false); ("g5-cooperative", scheme, true) ]

let second_level_policies ?(settings = Experiment.default_settings)
    ?(filter_capacities = Fig4.default_filter_capacities) profile =
  let trace = Trace_store.get ~settings profile in
  hit_rate_panel ~settings
    ~name:(profile.Agg_workload.Profile.name ^ " (A6 second-level policies)")
    ~trace ~filter_capacities
    [
      ("agg-g5", Agg_core.Server_cache.Aggregating Agg_core.Config.default, false);
      ("lru", Agg_core.Server_cache.Plain Agg_cache.Cache.Lru, false);
      ("lfu", Agg_core.Server_cache.Plain Agg_cache.Cache.Lfu, false);
      ("mq", Agg_core.Server_cache.Plain Agg_cache.Cache.Mq, false);
      ("slru", Agg_core.Server_cache.Plain Agg_cache.Cache.Slru, false);
      ("2q", Agg_core.Server_cache.Plain Agg_cache.Cache.Twoq, false);
      ("arc", Agg_core.Server_cache.Plain Agg_cache.Cache.Arc, false);
    ]

let placement ?(settings = Experiment.default_settings) profile =
  let open Agg_util in
  let trace = Trace_store.get ~settings profile in
  let half = Agg_trace.Trace.length trace / 2 in
  let train = Agg_trace.Trace.sub trace ~pos:0 ~len:half in
  let replay = Agg_trace.Trace.files (Agg_trace.Trace.sub trace ~pos:half ~len:half) in
  let table =
    Table.create
      ~title:(Printf.sprintf "A8 — placement on a linear device (%s)" profile.Agg_workload.Profile.name)
      ~columns:[ "layout"; "slots used"; "mean seek"; "max seek"; "cold allocations" ]
  in
  Pool.map ~jobs:settings.Experiment.jobs
    (fun (name, build) ->
      let disk = build train in
      let stats = Agg_placement.Disk.replay disk replay in
      ( name,
        Agg_placement.Disk.occupied_slots disk,
        stats.Agg_placement.Disk.mean_seek,
        stats.Agg_placement.Disk.max_seek,
        stats.Agg_placement.Disk.allocated_on_the_fly ))
    Agg_placement.Layout.strategies
  |> List.iter (fun (name, slots, mean_seek, max_seek, cold) ->
         Table.add_row table
           [
             name;
             string_of_int slots;
             Printf.sprintf "%.1f" mean_seek;
             string_of_int max_seek;
             string_of_int cold;
           ]);
  table

let sequence_model ?(settings = Experiment.default_settings) ?(lengths = [ 1; 2; 4; 8 ]) () =
  let open Agg_util in
  let table =
    Table.create ~title:"A7 — successor-sequence tracking (Fig. 6 model)"
      ~columns:
        ("workload"
        :: List.concat_map
             (fun l -> [ Printf.sprintf "L=%d full %%" l; Printf.sprintf "L=%d first %%" l ])
             lengths)
  in
  Experiment.grid ~settings ~rows:Agg_workload.Profile.all ~cols:lengths (fun profile length ->
      let files = Trace_store.files ~settings profile in
      let a = Agg_successor.Sequence_tracker.measure ~length files in
      let pct v =
        Printf.sprintf "%.1f" (100.0 *. Stats.ratio v a.Agg_successor.Sequence_tracker.opportunities)
      in
      [
        pct a.Agg_successor.Sequence_tracker.full_matches;
        pct a.Agg_successor.Sequence_tracker.first_matches;
      ])
  |> List.iter (fun (profile, cells) ->
         Table.add_row table
           (profile.Agg_workload.Profile.name :: List.concat_map snd cells));
  table

(* replay a file sequence through an LRU cache that, on each miss,
   fetches the members named by [group_for] as a cold block *)
let static_group_fetches ~capacity ~group_for files =
  let cache = Agg_cache.Cache.create Agg_cache.Cache.Lru ~capacity in
  Array.fold_left
    (fun fetches file ->
      if Agg_cache.Cache.access cache file then fetches
      else begin
        ignore (Agg_cache.Cache.insert_cold_group cache (group_for file));
        fetches + 1
      end)
    0 files

let overlap_vs_partition ?(settings = Experiment.default_settings) ?(group_size = 5) profile =
  let open Agg_util in
  let trace = Trace_store.get ~settings profile in
  let half = Agg_trace.Trace.length trace / 2 in
  let train = Agg_trace.Trace.sub trace ~pos:0 ~len:half in
  let replay_trace = Agg_trace.Trace.sub trace ~pos:half ~len:half in
  let replay = Agg_trace.Trace.files replay_trace in
  let graph = Agg_successor.Graph.of_trace train in
  let capacity = 300 in
  (* overlapping: each file anchors its own group *)
  let overlap_fetches () =
    static_group_fetches ~capacity replay ~group_for:(fun file ->
        match (Agg_successor.Grouping.group_of graph ~size:group_size file).Agg_successor.Grouping.members with
        | _anchor :: members -> members
        | [] -> [])
  in
  (* partition: a file belongs to exactly one group *)
  let partition_fetches () =
    let part =
      Agg_successor.Grouping.membership (Agg_successor.Grouping.partition graph ~size:group_size)
    in
    static_group_fetches ~capacity replay ~group_for:(fun file ->
        match Hashtbl.find_opt part file with
        | Some group -> List.filter (fun m -> m <> file) group.Agg_successor.Grouping.members
        | None -> [])
  in
  let lru_fetches () = static_group_fetches ~capacity replay ~group_for:(fun _ -> []) in
  let dynamic_fetches () =
    let config = Agg_core.Config.with_group_size group_size Agg_core.Config.default in
    let cache = Agg_core.Client_cache.create ~config ~capacity () in
    (Agg_core.Client_cache.run cache replay_trace).Agg_core.Metrics.demand_fetches
  in
  let fetched =
    Pool.map ~jobs:settings.Experiment.jobs
      (fun (name, run) -> (name, run ()))
      [
        ("lru (no groups)", lru_fetches);
        ("static partition (disjoint)", partition_fetches);
        ("static overlapping groups", overlap_fetches);
        ("dynamic aggregating cache", dynamic_fetches);
      ]
  in
  let lru = match fetched with (_, lru) :: _ -> lru | [] -> 0 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "A10 — overlap vs partition (%s, g=%d, cache=%d)"
           profile.Agg_workload.Profile.name group_size capacity)
      ~columns:[ "scheme"; "demand fetches"; "vs LRU %" ]
  in
  List.iter
    (fun (name, fetches) ->
      Table.add_row table
        [
          name;
          string_of_int fetches;
          Printf.sprintf "%.1f" (100.0 *. float_of_int (lru - fetches) /. float_of_int lru);
        ])
    fetched;
  table

let server_group_size ?(settings = Experiment.default_settings)
    ?(group_sizes = [ 2; 3; 5; 7; 10 ]) profile =
  let trace = Trace_store.get ~settings profile in
  let filter_capacities = [ 100; 200; 300; 400; 500 ] in
  let rows =
    ("lru", Agg_core.Server_cache.Plain Agg_cache.Cache.Lru, false)
    :: List.map
         (fun g ->
           ( Printf.sprintf "g%d" g,
             Agg_core.Server_cache.Aggregating
               (Agg_core.Config.with_group_size g Agg_core.Config.default),
             false ))
         group_sizes
  in
  hit_rate_panel ~settings
    ~name:(profile.Agg_workload.Profile.name ^ " (A11 server group size)")
    ~trace ~filter_capacities rows

let adaptive_group ?(settings = Experiment.default_settings) () =
  let open Agg_util in
  let table =
    Table.create ~title:"A9 — adaptive group sizing (fetches / speculation issued)"
      ~columns:[ "workload"; "lru"; "g5"; "g10"; "adaptive"; "final g" ]
  in
  let show (m : Agg_core.Metrics.client) =
    Printf.sprintf "%d / %d" m.Agg_core.Metrics.demand_fetches
      m.Agg_core.Metrics.prefetch.Agg_core.Metrics.issued
  in
  Experiment.grid ~settings ~rows:Agg_workload.Profile.all
    ~cols:[ `Fixed 1; `Fixed 5; `Fixed 10; `Adaptive ]
    (fun profile variant ->
      let trace = Trace_store.get ~settings profile in
      match variant with
      | `Fixed g ->
          let config = Agg_core.Config.with_group_size g Agg_core.Config.default in
          let cache = Agg_core.Client_cache.create ~config ~capacity:300 () in
          (show (Agg_core.Client_cache.run cache trace), "")
      | `Adaptive ->
          let adaptive = Agg_core.Adaptive_client.create ~capacity:300 () in
          let metrics = Agg_core.Adaptive_client.run adaptive trace in
          (show metrics, string_of_int (Agg_core.Adaptive_client.current_group_size adaptive)))
  |> List.iter (fun (profile, cells) ->
         let shown = List.map (fun (_, (s, _)) -> s) cells in
         let final_g =
           List.fold_left (fun acc (_, (_, g)) -> if g = "" then acc else g) "" cells
         in
         Table.add_row table ((profile.Agg_workload.Profile.name :: shown) @ [ final_g ]));
  table

let predictor_accuracy ?(settings = Experiment.default_settings) () =
  let open Agg_util in
  let table =
    Table.create ~title:"Next-access predictor accuracy (recency vs frequency vs context)"
      ~columns:[ "workload"; "last-successor %"; "markov (frequency) %"; "ppm order-2 %" ]
  in
  Experiment.grid ~settings ~rows:Agg_workload.Profile.all ~cols:[ `Last; `Markov; `Ppm ]
    (fun profile predictor ->
      let files = Trace_store.files ~settings profile in
      let a =
        match predictor with
        | `Last -> Agg_baselines.Last_successor.measure files
        | `Markov -> Agg_baselines.Markov_predictor.measure files
        | `Ppm -> Agg_baselines.Ppm.measure files
      in
      Printf.sprintf "%.1f" (100.0 *. Agg_baselines.Last_successor.accuracy_rate a))
  |> List.iter (fun (profile, cells) ->
         Table.add_row table (profile.Agg_workload.Profile.name :: List.map snd cells));
  table
