module Scenario = Agg_scenario.Scenario
module Exec = Agg_scenario.Exec

type entry = { file : string; outcome : (Exec.outcome, string) result }

let corpus_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".scn")
  |> List.sort String.compare
  |> List.map (fun f -> Filename.concat dir f)

let run_corpus ?events_cap ~(runner : Experiment.Runner.t) dir =
  List.map
    (fun file ->
      let outcome =
        match Scenario.load_file file with
        | Error _ as e -> e
        | Ok s ->
            Exec.run ~jobs:runner.Experiment.Runner.settings.Experiment.jobs ?events_cap
              ?scope:runner.Experiment.Runner.scope s
      in
      { file; outcome })
    (corpus_files dir)

let all_ok entries =
  List.for_all
    (fun e -> match e.outcome with Ok o -> o.Exec.ok | Error _ -> false)
    entries

let render entries =
  let b = Buffer.create 1024 in
  List.iter
    (fun e ->
      match e.outcome with
      | Error msg -> Buffer.add_string b (Printf.sprintf "ERROR %s: %s\n" e.file msg)
      | Ok o ->
          let checks = o.Exec.checks in
          let failed = List.filter (fun (c : Exec.check) -> not c.Exec.pass) checks in
          Buffer.add_string b
            (Printf.sprintf "%-4s %-28s events=%-6d checks=%d/%d%s\n"
               (if o.Exec.ok then "ok" else "FAIL")
               o.Exec.scenario.Scenario.name o.Exec.events
               (List.length checks - List.length failed)
               (List.length checks)
               (match failed with
               | [] -> ""
               | c :: _ ->
                   Printf.sprintf " first-fail=%s%s" c.Exec.check_name
                     (if o.Exec.scenario.Scenario.expect_violation then " (expected)" else ""))))
    entries;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_entries entries =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"scenarios\": [\n";
  List.iteri
    (fun idx e ->
      let sep = if idx = List.length entries - 1 then "" else "," in
      match e.outcome with
      | Error msg ->
          Buffer.add_string b
            (Printf.sprintf "    {\"file\": \"%s\", \"error\": \"%s\"}%s\n" (json_escape e.file)
               (json_escape msg) sep)
      | Ok o ->
          let cells =
            o.Exec.cells
            |> List.map (fun (c : Exec.cell) ->
                   Printf.sprintf "{\"policy\": \"%s\", \"hit_rate_pct\": %.2f}"
                     (Scenario.policy_name c.Exec.policy)
                     (match Exec.metric c "hit_rate" with Some v -> v | None -> 0.0))
            |> String.concat ", "
          in
          let checks =
            o.Exec.checks
            |> List.map (fun (c : Exec.check) ->
                   Printf.sprintf "{\"name\": \"%s\", \"pass\": %b, \"detail\": \"%s\"}"
                     (json_escape c.Exec.check_name) c.Exec.pass (json_escape c.Exec.detail))
            |> String.concat ", "
          in
          Buffer.add_string b
            (Printf.sprintf
               "    {\"file\": \"%s\", \"name\": \"%s\", \"events\": %d, \"ok\": %b, \"pass\": \
                %b, \"expect_violation\": %b,\n\
               \     \"cells\": [%s],\n\
               \     \"checks\": [%s]}%s\n"
               (json_escape e.file)
               (json_escape o.Exec.scenario.Scenario.name)
               o.Exec.events o.Exec.ok o.Exec.pass o.Exec.scenario.Scenario.expect_violation cells
               checks sep))
    entries;
  Buffer.add_string b (Printf.sprintf "  ],\n  \"all_ok\": %b\n}\n" (all_ok entries));
  Buffer.contents b
