(** The headline numbers of the paper's abstract and conclusions,
    recomputed from the simulations: client demand-fetch reduction from
    grouping, and server hit-rate improvement over LRU under intervening
    caches. *)

type client_row = {
  workload : string;
  capacity : int;
  lru_fetches : int;
  g5_fetches : int;
  reduction_percent : float;
}

type server_row = {
  workload : string;
  filter_capacity : int;
  lru_hit_rate : float;  (** percent *)
  g5_hit_rate : float;  (** percent *)
  improvement_percent : float;  (** relative improvement of g5 over LRU *)
}

val improvement : lru:float -> g5:float -> float
(** Relative improvement in percent, total on the whole domain: [0.] when
    both rates are zero, [infinity] when only the baseline is (rendered
    as ["n/a"] by {!server_table}) — never nan. *)

val client_rows : ?settings:Experiment.settings -> ?capacity:int -> unit -> client_row list
(** One row per workload at the given client cache capacity (default 300). *)

val server_rows :
  ?settings:Experiment.settings -> ?filter_capacities:int list -> unit -> server_row list
(** Rows for every (workload, filter capacity) combination. *)

val client_table : client_row list -> Agg_util.Table.t
val server_table : server_row list -> Agg_util.Table.t
