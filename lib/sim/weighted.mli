(** The weighted-caching sweep: size/cost-aware baselines against the
    aggregating cache on the size/cost-skewed profiles
    ({!Agg_workload.Profile.sized}).

    Four policies are replayed over the same trace per profile —
    ["lru"] (size-aware LRU through the facade), ["landlord"] (Young's
    rent-based algorithm), ["bundle"] (Landlord serving whole predicted
    retrieval groups as one bundle) and ["g5"] (the paper's aggregating
    client, group size 5) — and judged on byte-weighted hit rate and
    total retrieval cost, the two metrics that only exist once files
    stop being unit-sized. *)

val default_capacities : int list
(** 250–4000 size units (sizes are Pareto up to 64/128 per file, so
    these bracket roughly the same resident-file counts as the
    unweighted figures' 100–800). *)

val default_verdict_capacity : int
(** 1000 size units — the mid-sweep point {!verdicts} compares at. *)

val policies : string list
(** [["lru"; "landlord"; "bundle"; "g5"]], the row order of every sweep. *)

type cell = {
  policy : string;
  profile : string;
  capacity : int;  (** in size units *)
  byte_hit_rate : float;  (** bytes hit / bytes accessed *)
  cost_saved_rate : float;
      (** retrieval cost avoided by hits: [(Σ cost over accesses −
          cost_fetched) / Σ cost over accesses]; prefetch spend is
          deliberately excluded (it shows in [total_cost]) *)
  total_cost : int;  (** cost fetched + cost prefetched *)
}

val sweep : ?capacities:int list -> Experiment.Runner.t -> cell list
(** Every (policy, capacity) cell for both sized profiles, rows in
    {!policies} order. Cells are evaluated through the runner's pool and
    scope under span labels ["weighted/<profile>/<policy>/c<C>"]. *)

val run : ?capacities:int list -> Experiment.Runner.t -> Experiment.figure
(** The sweep as a figure: per sized profile, one byte-weighted hit-rate
    panel and one total-retrieval-cost panel (fig3-shaped — policy
    series vs capacity). *)

type verdict = {
  v_profile : string;
  v_capacity : int;
  g5_cost : int;  (** the aggregating client's total retrieval cost *)
  landlord_cost : int;
  g5_wins : bool;  (** [g5_cost < landlord_cost] *)
}

val verdicts : ?capacity:int -> Experiment.Runner.t -> verdict list
(** The headline question per sized profile — does the paper's g = 5
    aggregating cache still beat cost-aware Landlord on total retrieval
    cost once sizes and costs are skewed? — at [capacity] (default
    {!default_verdict_capacity}). *)
