let default_filter_capacities = [ 50; 100; 150; 200; 250; 300; 350; 400; 450; 500 ]
let default_server_capacity = 300

let schemes ~group_size =
  [
    ( Printf.sprintf "g%d" group_size,
      Agg_core.Server_cache.Aggregating (Agg_core.Config.with_group_size group_size Agg_core.Config.default) );
    ("lru", Agg_core.Server_cache.Plain Agg_cache.Cache.Lru);
    ("lfu", Agg_core.Server_cache.Plain Agg_cache.Cache.Lfu);
  ]

let panel ?(filter_capacities = default_filter_capacities)
    ?(server_capacity = default_server_capacity) ?(group_size = 5) ?(cooperative = false)
    ~(runner : Experiment.Runner.t) profile =
  let settings = runner.Experiment.Runner.settings in
  (* the simulation only consumes file ids: use the memoised id array *)
  let files = Trace_store.files ~settings profile in
  let span_label (scheme_label, _) filter_capacity =
    Printf.sprintf "fig4/%s/%s/f%d" profile.Agg_workload.Profile.name scheme_label
      filter_capacity
  in
  let sink scheme_label filter_capacity =
    Experiment.Runner.sink runner (span_label (scheme_label, ()) filter_capacity)
  in
  let series =
    Experiment.grid ?profiler:(Experiment.Runner.profiler runner) ~span_label ~settings
      ~rows:(schemes ~group_size) ~cols:filter_capacities
      (fun (scheme_label, scheme) filter_capacity ->
        let sim =
          Agg_core.Server_cache.create ~cooperative ~obs:(sink scheme_label filter_capacity)
            ~filter_kind:Agg_cache.Cache.Lru ~filter_capacity ~server_capacity ~scheme ()
        in
        let m = Agg_core.Server_cache.run_files sim files in
        100.0 *. Agg_core.Metrics.server_hit_rate m)
    |> List.map (fun ((label, _), points) ->
           {
             Experiment.label;
             points = List.map (fun (capacity, y) -> (float_of_int capacity, y)) points;
           })
  in
  {
    Experiment.name = profile.Agg_workload.Profile.name;
    x_label = "filter capacity (files)";
    y_label = "server hit rate (%)";
    series;
  }

let run (runner : Experiment.Runner.t) =
  let panel_for profile = panel ~runner profile in
  {
    Experiment.id = "fig4";
    title =
      Printf.sprintf "Server cache hit rate vs client cache size (server capacity = %d)"
        default_server_capacity;
    panels =
      [
        panel_for Agg_workload.Profile.workstation;
        panel_for Agg_workload.Profile.users;
        panel_for Agg_workload.Profile.server;
      ];
  }

