(** Corpus driver for the declarative scenarios of {!Agg_scenario}: load
    every [*.scn] file of a directory, execute each through an
    {!Experiment.Runner} (its [jobs] sizes the pool, its profiler times
    each cell), and render the results as a table and as the
    [BENCH_scenarios.json] document. *)

type entry = {
  file : string;  (** path of the [.scn] file *)
  outcome : (Agg_scenario.Exec.outcome, string) result;
      (** the executed scenario, or the load/run error *)
}

val corpus_files : string -> string list
(** The [*.scn] files directly inside a directory, sorted by name.
    @raise Sys_error when the directory cannot be read. *)

val run_corpus :
  ?events_cap:int -> runner:Experiment.Runner.t -> string -> entry list
(** Loads and executes every corpus file. Scenario files that fail to
    parse or run become [Error] entries rather than exceptions, so one
    corrupt file cannot hide the rest of the corpus.
    @raise Sys_error when the directory cannot be read. *)

val all_ok : entry list -> bool
(** Every entry executed and met its verdict ([Exec.outcome.ok]):
    healthy scenarios passed all checks, [expect violation] scenarios
    failed at least one. *)

val render : entry list -> string
(** One line per entry: verdict, name, events, check summary. *)

val json_of_entries : entry list -> string
(** The [BENCH_scenarios.json] document: per scenario its verdict,
    per-cell hit rates and every check with its detail. *)
