(** Fig. 3 — client-side aggregating cache: demand fetches as a function
    of cache capacity, one series per group size (g = 1 is plain LRU). *)

val default_capacities : int list
(** 100–800 step 100, as plotted in the paper. *)

val default_group_sizes : int list
(** 1, 2, 3, 5, 7, 10. *)

val panel :
  ?capacities:int list ->
  ?group_sizes:int list ->
  runner:Experiment.Runner.t ->
  Agg_workload.Profile.t ->
  Experiment.panel
(** Demand-fetch counts for one workload. The same generated trace is
    replayed through every (capacity, group size) configuration. Each
    sweep cell is profiled and sinked through the runner's scope under
    its span label ["fig3/<workload>/g<G>/c<C>"]. *)

val run : Experiment.Runner.t -> Experiment.figure
(** Both paper panels — [server] (3a) and [write] (3b) — under the
    runner's settings and scope (cells keyed by span label
    ["fig3/<workload>/g<G>/c<C>"]). *)
