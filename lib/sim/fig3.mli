(** Fig. 3 — client-side aggregating cache: demand fetches as a function
    of cache capacity, one series per group size (g = 1 is plain LRU). *)

val default_capacities : int list
(** 100–800 step 100, as plotted in the paper. *)

val default_group_sizes : int list
(** 1, 2, 3, 5, 7, 10. *)

val panel :
  ?profiler:Agg_obs.Span.recorder ->
  ?sink_for:(group:int -> capacity:int -> Agg_obs.Sink.t) ->
  ?settings:Experiment.settings ->
  ?capacities:int list ->
  ?group_sizes:int list ->
  Agg_workload.Profile.t ->
  Experiment.panel
(** Demand-fetch counts for one workload. The same generated trace is
    replayed through every (capacity, group size) configuration.

    [profiler] times each sweep cell as a span named
    ["fig3/<workload>/g<G>/c<C>"]. [sink_for] supplies a per-cell event
    sink (default: no-op); because each cell owns its sink, event
    sequences are identical for any [settings.jobs] — give each cell a
    distinct sink when running with several domains. *)

val run : Experiment.Runner.t -> Experiment.figure
(** Both paper panels — [server] (3a) and [write] (3b) — under the
    runner's settings, profiler and sinks. The runner's [sink_for] is
    keyed by span label (["fig3/<workload>/g<G>/c<C>"]). This is the
    preferred entry point; {!figure} is a thin wrapper kept for one
    release. *)

val figure :
  ?profiler:Agg_obs.Span.recorder -> ?settings:Experiment.settings -> unit -> Experiment.figure
(** Deprecated spelling of {!run} (no sinks). *)
