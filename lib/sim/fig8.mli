(** Fig. 8 — successor entropy of LRU-filtered miss streams: one series
    per intervening cache capacity. A tiny filter scrambles succession; a
    large one distils the stream down to highly ordered cold-start runs,
    *increasing* predictability — the effect that keeps the aggregating
    server cache useful when plain LRU fails. *)

val default_filter_capacities : int list
(** 1, 10, 50, 100, 500, 1000 — the paper's filter sizes. *)

val panel :
  ?filter_capacities:int list ->
  ?lengths:int list ->
  runner:Experiment.Runner.t ->
  Agg_workload.Profile.t ->
  Experiment.panel
(** The runner's scope profiles each entropy cell as a span named
    ["fig8/<workload>/f<C>/l<L>"] (no events are emitted). *)

val run : Experiment.Runner.t -> Experiment.figure
(** The paper's panels — [write] (8a) and [users] (8b) — under the
    runner's settings and scope (this figure emits no events, so the
    scope's sinks are unused). *)
