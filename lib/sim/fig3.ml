let default_capacities = [ 100; 200; 300; 400; 500; 600; 700; 800 ]
let default_group_sizes = [ 1; 2; 3; 5; 7; 10 ]

let label_of_group g = if g = 1 then "lru" else Printf.sprintf "g%d" g

let panel ?(capacities = default_capacities) ?(group_sizes = default_group_sizes)
    ~(runner : Experiment.Runner.t) profile =
  let settings = runner.Experiment.Runner.settings in
  (* the client only consumes file ids: fold over the memoised id array *)
  let files = Trace_store.files ~settings profile in
  let span_label g capacity =
    Printf.sprintf "fig3/%s/g%d/c%d" profile.Agg_workload.Profile.name g capacity
  in
  let sink g capacity = Experiment.Runner.sink runner (span_label g capacity) in
  let series =
    Experiment.grid ?profiler:(Experiment.Runner.profiler runner) ~span_label ~settings
      ~rows:group_sizes ~cols:capacities (fun g capacity ->
        let config = Agg_core.Config.with_group_size g Agg_core.Config.default in
        let cache = Agg_core.Client_cache.create ~config ~obs:(sink g capacity) ~capacity () in
        let m = Agg_core.Client_cache.run_files cache files in
        float_of_int m.Agg_core.Metrics.demand_fetches)
    |> List.map (fun (g, points) ->
           {
             Experiment.label = label_of_group g;
             points = List.map (fun (capacity, y) -> (float_of_int capacity, y)) points;
           })
  in
  {
    Experiment.name = profile.Agg_workload.Profile.name;
    x_label = "cache capacity (files)";
    y_label = "demand fetches";
    series;
  }

let run (runner : Experiment.Runner.t) =
  let panel_for profile = panel ~runner profile in
  {
    Experiment.id = "fig3";
    title = "Client demand fetches vs cache capacity, by group size";
    panels = [ panel_for Agg_workload.Profile.server; panel_for Agg_workload.Profile.write ];
  }
