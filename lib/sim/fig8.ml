let default_filter_capacities = [ 1; 10; 50; 100; 500; 1000 ]

let panel ?(filter_capacities = default_filter_capacities) ?(lengths = Fig7.default_lengths)
    ~(runner : Experiment.Runner.t) profile =
  let settings = runner.Experiment.Runner.settings in
  let trace = Trace_store.get ~settings profile in
  (* two parallel stages: filter each capacity's miss stream, then sweep
     every (capacity, length) entropy cell over the shared streams *)
  let missed =
    Agg_util.Pool.map ~jobs:settings.Experiment.jobs
      (fun capacity ->
        (capacity, Agg_trace.Trace.files (Agg_trace.Filter.miss_stream ~capacity trace)))
      filter_capacities
  in
  let span_label (capacity, _) length =
    Printf.sprintf "fig8/%s/f%d/l%d" profile.Agg_workload.Profile.name capacity length
  in
  let series =
    Experiment.grid ?profiler:(Experiment.Runner.profiler runner) ~span_label ~settings
      ~rows:missed ~cols:lengths
      (fun (_, files) length -> Agg_entropy.Entropy.of_files ~length files)
    |> List.map (fun ((capacity, _), points) ->
           {
             Experiment.label = string_of_int capacity;
             points = List.map (fun (l, h) -> (float_of_int l, h)) points;
           })
  in
  {
    Experiment.name = profile.Agg_workload.Profile.name;
    x_label = "successor sequence length";
    y_label = "successor entropy (bits)";
    series;
  }

let run (runner : Experiment.Runner.t) =
  let panel_for profile = panel ~runner profile in
  {
    Experiment.id = "fig8";
    title = "Successor entropy of LRU-filtered miss streams, by filter capacity";
    panels = [ panel_for Agg_workload.Profile.write; panel_for Agg_workload.Profile.users ];
  }

