(** Shared shapes for experiment results: labelled data series grouped
    into panels, mirroring the paper's figures, plus rendering to text
    tables. *)

type series = { label : string; points : (float * float) list }

type panel = {
  name : string;  (** e.g. the workload of a sub-figure *)
  x_label : string;
  y_label : string;
  series : series list;
}

type figure = { id : string; title : string; panels : panel list }

type settings = { events : int; seed : int; warmup : int; jobs : int }
(** [events]: trace length; [seed]: generator seed; [warmup]: events run
    before counters are reset (0 = measure from cold, as the paper's
    absolute fetch counts do); [jobs]: number of domains used to
    evaluate independent sweep cells ([1] = fully sequential). Results
    are independent of [jobs] — see {!Agg_util.Pool}. *)

val default_settings : settings
(** 60k events, seed 7, no warm-up,
    [jobs = Agg_util.Pool.default_jobs ()]. *)

val quick_settings : settings
(** A small configuration for tests: 6k events. *)

(** One value describing {e how} a sweep is evaluated — settings,
    parallelism and one {!Agg_obs.Scope} holding every instrument — so
    every figure exposes the same [run : Runner.t -> figure] (and
    [panel : runner:Runner.t -> ...]) entry point instead of its own
    combination of optional arguments. *)
module Runner : sig
  type nonrec t = {
    settings : settings;
    scope : Agg_obs.Scope.t option;
        (** the sweep's observability — profiler and per-cell sinks
            (the scope's [sink_for] is keyed by the cell's span label,
            e.g. ["fig3/server/g5/c300"]; because each cell owns its
            sink, event sequences are identical for any [settings.jobs]
            — supply a distinct sink per label when running with several
            domains). [None] (the default) is telemetry off. *)
  }

  val create : ?jobs:int -> ?scope:Agg_obs.Scope.t -> ?settings:settings -> unit -> t
  (** [create ()] is {!default_settings} with no scope; [jobs], when
      given, overrides [settings.jobs]. *)

  val default : t

  val profiler : t -> Agg_obs.Span.recorder option
  (** The scope's span recorder, if any — each sweep cell is timed as
      one {!Agg_obs.Span} when set. *)

  val sink : t -> string -> Agg_obs.Sink.t
  (** [sink t label] is the sink for the cell labelled [label]
      ({!Agg_obs.Sink.noop} when the scope sets no sinks). *)
end

val grid :
  ?profiler:Agg_obs.Span.recorder ->
  ?span_label:('r -> 'c -> string) ->
  settings:settings ->
  rows:'r list ->
  cols:'c list ->
  ('r -> 'c -> 'y) ->
  ('r * ('c * 'y) list) list
(** [grid ~settings ~rows ~cols f] evaluates every [(row, col)] cell of a
    sweep through {!Agg_util.Pool.map} with [settings.jobs] domains and
    returns the results regrouped by row, in input order. [f] must be
    safe to run concurrently with itself (share only immutable data,
    e.g. traces from {!Trace_store}).

    When [profiler] is given, each cell evaluation is wall-clock timed as
    one {!Agg_obs.Span} named by [span_label] (default ["cell"]), tagged
    with the evaluating domain — exportable as a Chrome trace via
    {!Agg_obs.Span.write_chrome}. Timing never affects results. *)

val series_value : series -> float -> float option
(** [series_value s x] is the y at exactly [x], if present. *)

val panel_table : figure_id:string -> panel -> Agg_util.Table.t
(** One row per x value, one column per series. *)

val render_figure : figure -> string
val print_figure : figure -> unit
