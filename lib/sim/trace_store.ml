type key = { profile : Agg_workload.Profile.t; seed : int; events : int }

(* Each entry owns a mutex so generating one trace does not block
   lookups of others; the global lock only guards the table itself. *)
type entry = {
  lock : Mutex.t;
  mutable trace : Agg_trace.Trace.t option;
  mutable files : Agg_trace.File_id.t array option;
}

let table : (key, entry) Hashtbl.t = Hashtbl.create 16
let table_lock = Mutex.create ()

let entry_of key =
  Mutex.protect table_lock (fun () ->
      match Hashtbl.find_opt table key with
      | Some e -> e
      | None ->
          let e = { lock = Mutex.create (); trace = None; files = None } in
          Hashtbl.add table key e;
          e)

let key_of ~(settings : Experiment.settings) profile =
  { profile; seed = settings.seed; events = settings.events }

let get ~settings profile =
  let key = key_of ~settings profile in
  let e = entry_of key in
  Mutex.protect e.lock (fun () ->
      match e.trace with
      | Some trace -> trace
      | None ->
          let trace =
            Agg_workload.Generator.generate ~seed:key.seed ~events:key.events key.profile
          in
          e.trace <- Some trace;
          trace)

let files ~settings profile =
  let key = key_of ~settings profile in
  let e = entry_of key in
  Mutex.protect e.lock (fun () ->
      match e.files with
      | Some files -> files
      | None ->
          let files =
            match e.trace with
            | Some trace -> Agg_trace.Trace.files trace
            | None ->
                (* same deterministic stream as [get], without boxing an
                   event list we would only project file ids out of *)
                Agg_workload.Generator.generate_files ~seed:key.seed ~events:key.events
                  key.profile
          in
          e.files <- Some files;
          files)

let size () = Mutex.protect table_lock (fun () -> Hashtbl.length table)
let reset () = Mutex.protect table_lock (fun () -> Hashtbl.reset table)
