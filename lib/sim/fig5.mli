(** Fig. 5 — metadata maintenance: the probability that a per-file
    successor list fails to contain the successor about to be observed,
    as a function of list capacity, for LRU and LFU list replacement and
    the all-knowing oracle. Lists are consulted *before* they learn the
    event; the average is over every access that has a predecessor, which
    weights each file by its access frequency exactly as Eq. 2 does. *)

val default_capacities : int list
(** 1–10. *)

val panel :
  ?capacities:int list ->
  runner:Experiment.Runner.t ->
  Agg_workload.Profile.t ->
  Experiment.panel
(** Miss probabilities for one workload. Each sweep cell is profiled
    and sinked through the runner's scope under its span label
    ["fig5/<workload>/<policy>/k<C>"] (policy is "lru"/"lfu"). *)

val run : Experiment.Runner.t -> Experiment.figure
(** The paper's panels — [workstation] (5a) and [server] (5b) — under
    the runner's settings and scope (cells keyed by span label
    ["fig5/<workload>/<policy>/k<C>"]). *)

val miss_probability :
  ?obs:Agg_obs.Sink.t ->
  policy:Agg_successor.Successor_list.policy ->
  capacity:int ->
  Agg_trace.File_id.t array ->
  float
(** The probability plotted for one (policy, capacity) point. When [obs]
    is an enabled sink, one [Successor_update] event is emitted per
    observed adjacency (every access with a predecessor). *)

val oracle_miss_probability : Agg_trace.File_id.t array -> float
