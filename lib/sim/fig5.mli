(** Fig. 5 — metadata maintenance: the probability that a per-file
    successor list fails to contain the successor about to be observed,
    as a function of list capacity, for LRU and LFU list replacement and
    the all-knowing oracle. Lists are consulted *before* they learn the
    event; the average is over every access that has a predecessor, which
    weights each file by its access frequency exactly as Eq. 2 does. *)

val default_capacities : int list
(** 1–10. *)

val panel :
  ?profiler:Agg_obs.Span.recorder ->
  ?sink_for:(policy:string -> capacity:int -> Agg_obs.Sink.t) ->
  ?settings:Experiment.settings ->
  ?capacities:int list ->
  Agg_workload.Profile.t ->
  Experiment.panel
(** [profiler] times each sweep cell as a span named
    ["fig5/<workload>/<policy>/k<C>"]. [sink_for] supplies a per-cell
    event sink keyed by policy label ("lru"/"lfu") and list capacity
    (default: no-op). *)

val run : Experiment.Runner.t -> Experiment.figure
(** The paper's panels — [workstation] (5a) and [server] (5b) — under
    the runner's settings, profiler and sinks (keyed by span label
    ["fig5/<workload>/<policy>/k<C>"]). Preferred entry point; {!figure}
    is a thin wrapper kept for one release. *)

val figure :
  ?profiler:Agg_obs.Span.recorder -> ?settings:Experiment.settings -> unit -> Experiment.figure
(** Deprecated spelling of {!run} (no sinks). *)

val miss_probability :
  ?obs:Agg_obs.Sink.t ->
  policy:Agg_successor.Successor_list.policy ->
  capacity:int ->
  Agg_trace.File_id.t array ->
  float
(** The probability plotted for one (policy, capacity) point. When [obs]
    is an enabled sink, one [Successor_update] event is emitted per
    observed adjacency (every access with a predecessor). *)

val oracle_miss_probability : Agg_trace.File_id.t array -> float
