module Scheme = Agg_system.Scheme
module Path = Agg_system.Path
module Plan = Agg_faults.Plan
module Counters = Agg_faults.Counters

let default_loss_rates = [ 0.0; 0.05; 0.1; 0.15; 0.2; 0.3 ]
let default_schemes = [ Scheme.plain_lru; Scheme.aggregating () ]

type point = {
  scheme : string;
  loss_rate : float;
  hit_rate : float;
  mean_latency : float;
  timeouts : int;
  retries : int;
  degraded_fetches : int;
}

let sweep ?(loss_rates = default_loss_rates) ?(schemes = default_schemes)
    ?(profile = Agg_workload.Profile.server) (runner : Experiment.Runner.t) =
  let settings = runner.Experiment.Runner.settings in
  let trace = Trace_store.get ~settings profile in
  let span_label scheme loss_rate =
    Printf.sprintf "resilience/%s/%s/p%g" profile.Agg_workload.Profile.name (Scheme.name scheme)
      loss_rate
  in
  Experiment.grid ?profiler:(Experiment.Runner.profiler runner) ~span_label ~settings
    ~rows:schemes ~cols:loss_rates (fun scheme loss_rate ->
      let faults = { Plan.none with Plan.loss_rate } in
      let config = { Path.default_config with Path.client = scheme; faults } in
      let r = Path.run config trace in
      {
        scheme = Scheme.name scheme;
        loss_rate;
        hit_rate = 100.0 *. Path.client_hit_rate r;
        mean_latency = r.Path.mean_latency;
        timeouts = r.Path.faults.Counters.timeouts;
        retries = r.Path.faults.Counters.retries;
        degraded_fetches = r.Path.faults.Counters.degraded_fetches;
      })
  |> List.concat_map snd |> List.map snd

let hit_rate_advantage ~loss_rate points =
  let rate scheme =
    List.find_opt (fun p -> p.scheme = scheme && Float.equal p.loss_rate loss_rate) points
    |> Option.map (fun p -> p.hit_rate)
  in
  match (rate "g5", rate "lru") with Some g, Some l -> Some (g -. l) | _ -> None

let run ?loss_rates ?schemes ?(profile = Agg_workload.Profile.server) runner =
  let points = sweep ?loss_rates ?schemes ~profile runner in
  let labels = List.sort_uniq compare (List.map (fun p -> p.scheme) points) in
  let series value =
    List.map
      (fun label ->
        {
          Experiment.label;
          points =
            List.filter_map
              (fun p -> if p.scheme = label then Some (p.loss_rate, value p) else None)
              points;
        })
      labels
  in
  let name = profile.Agg_workload.Profile.name in
  {
    Experiment.id = "resilience";
    title = "Resilience to message loss: aggregating client (g5) vs plain LRU";
    panels =
      [
        {
          Experiment.name = Printf.sprintf "%s hit rate" name;
          x_label = "message loss rate";
          y_label = "client hit rate (%)";
          series = series (fun p -> p.hit_rate);
        };
        {
          Experiment.name = Printf.sprintf "%s latency" name;
          x_label = "message loss rate";
          y_label = "mean demand latency (ms)";
          series = series (fun p -> p.mean_latency);
        };
      ];
  }

let json_of_points points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"sweep\": \"resilience\",\n  \"points\": [\n";
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"scheme\": \"%s\", \"loss_rate\": %g, \"hit_rate_pct\": %.2f, \
            \"mean_latency_ms\": %.3f, \"timeouts\": %d, \"retries\": %d, \
            \"degraded_fetches\": %d}%s\n"
           p.scheme p.loss_rate p.hit_rate p.mean_latency p.timeouts p.retries p.degraded_fetches
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string buf "  ],\n";
  (match hit_rate_advantage ~loss_rate:0.1 points with
  | Some d ->
      Buffer.add_string buf
        (Printf.sprintf "  \"g5_hit_rate_advantage_at_10pct_loss\": %.2f,\n" d);
      Buffer.add_string buf
        (Printf.sprintf "  \"g5_beats_lru_at_10pct_loss\": %b\n" (d > 0.0))
  | None -> Buffer.add_string buf "  \"g5_beats_lru_at_10pct_loss\": null\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf
