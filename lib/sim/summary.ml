type client_row = {
  workload : string;
  capacity : int;
  lru_fetches : int;
  g5_fetches : int;
  reduction_percent : float;
}

type server_row = {
  workload : string;
  filter_capacity : int;
  lru_hit_rate : float;
  g5_hit_rate : float;
  improvement_percent : float;
}

(* Total: a dead baseline (0 % LRU hit rate) must not leak nan or inf
   into the report. No improvement over nothing is 0; a gain over nothing
   is unbounded and rendered as "n/a" by {!server_table}. *)
let improvement ~lru ~g5 =
  if lru = 0.0 then (if g5 = 0.0 then 0.0 else Float.infinity)
  else 100.0 *. (g5 -. lru) /. lru

let demand_fetches ~files ~capacity ~group_size =
  let config = Agg_core.Config.with_group_size group_size Agg_core.Config.default in
  let cache = Agg_core.Client_cache.create ~config ~capacity () in
  (Agg_core.Client_cache.run_files cache files).Agg_core.Metrics.demand_fetches

let client_rows ?(settings = Experiment.default_settings) ?(capacity = 300) () =
  Experiment.grid ~settings ~rows:Agg_workload.Profile.all ~cols:[ 1; 5 ]
    (fun profile group_size ->
      demand_fetches ~files:(Trace_store.files ~settings profile) ~capacity ~group_size)
  |> List.map (fun (profile, points) ->
         match points with
         | [ (_, lru); (_, g5) ] ->
             {
               workload = profile.Agg_workload.Profile.name;
               capacity;
               lru_fetches = lru;
               g5_fetches = g5;
               reduction_percent =
                 (if lru = 0 then 0.0 else 100.0 *. float_of_int (lru - g5) /. float_of_int lru);
             }
         | _ -> assert false (* grid returns one point per column *))

let server_hit_rate ~files ~filter_capacity ~scheme =
  let sim =
    Agg_core.Server_cache.create ~filter_kind:Agg_cache.Cache.Lru ~filter_capacity
      ~server_capacity:Fig4.default_server_capacity ~scheme ()
  in
  100.0 *. Agg_core.Metrics.server_hit_rate (Agg_core.Server_cache.run_files sim files)

let server_rows ?(settings = Experiment.default_settings)
    ?(filter_capacities = Fig4.default_filter_capacities) () =
  let rows =
    List.concat_map
      (fun profile -> List.map (fun filter_capacity -> (profile, filter_capacity)) filter_capacities)
      [ Agg_workload.Profile.workstation; Agg_workload.Profile.users; Agg_workload.Profile.server ]
  in
  let schemes =
    [
      Agg_core.Server_cache.Plain Agg_cache.Cache.Lru;
      Agg_core.Server_cache.Aggregating Agg_core.Config.default;
    ]
  in
  Experiment.grid ~settings ~rows ~cols:schemes (fun (profile, filter_capacity) scheme ->
      server_hit_rate ~files:(Trace_store.files ~settings profile) ~filter_capacity ~scheme)
  |> List.map (fun ((profile, filter_capacity), points) ->
         match points with
         | [ (_, lru); (_, g5) ] ->
             {
               workload = profile.Agg_workload.Profile.name;
               filter_capacity;
               lru_hit_rate = lru;
               g5_hit_rate = g5;
               improvement_percent = improvement ~lru ~g5;
             }
         | _ -> assert false (* grid returns one point per column *))

let client_table rows =
  let open Agg_util in
  let table =
    Table.create ~title:"Headline: client demand-fetch reduction (g5 vs LRU)"
      ~columns:[ "workload"; "capacity"; "lru fetches"; "g5 fetches"; "reduction %" ]
  in
  List.iter
    (fun (r : client_row) ->
      Table.add_row table
        [
          r.workload;
          string_of_int r.capacity;
          string_of_int r.lru_fetches;
          string_of_int r.g5_fetches;
          Printf.sprintf "%.1f" r.reduction_percent;
        ])
    rows;
  table

let server_table rows =
  let open Agg_util in
  let table =
    Table.create ~title:"Headline: server hit-rate improvement (g5 vs LRU)"
      ~columns:[ "workload"; "filter"; "lru hit %"; "g5 hit %"; "improvement %" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.workload;
          string_of_int r.filter_capacity;
          Printf.sprintf "%.1f" r.lru_hit_rate;
          Printf.sprintf "%.1f" r.g5_hit_rate;
          (if Float.is_finite r.improvement_percent then
             Printf.sprintf "%.0f" r.improvement_percent
           else "n/a");
        ])
    rows;
  table
