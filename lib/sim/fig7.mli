(** Fig. 7 — successor entropy as a function of successor-sequence length,
    one series per workload: single-file successors are the most
    predictable, and the [server] workload is the most predictable of the
    four. *)

val default_lengths : int list
(** 1–20. *)

val run : ?lengths:int list -> Experiment.Runner.t -> Experiment.figure
(** A single panel with all four workload series, under the runner's
    settings and scope (spans named ["fig7/<workload>/l<L>"]; this
    figure emits no events, so the scope's sinks are unused). *)
