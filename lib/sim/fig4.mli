(** Fig. 4 — server cache hit rate under an intervening client LRU cache:
    one series per server scheme (aggregating g=5, LRU, LFU), plotted
    against the client ("filter") capacity, server capacity fixed. *)

val default_filter_capacities : int list
(** 50–500 step 50, as in the paper. *)

val default_server_capacity : int
(** 300 files. *)

val panel :
  ?filter_capacities:int list ->
  ?server_capacity:int ->
  ?group_size:int ->
  ?cooperative:bool ->
  runner:Experiment.Runner.t ->
  Agg_workload.Profile.t ->
  Experiment.panel
(** Server hit rate (%) for one workload. Each sweep cell is profiled
    and sinked through the runner's scope under its span label
    ["fig4/<workload>/<scheme>/f<C>"] (scheme is "g5"/"lru"/"lfu"). *)

val run : Experiment.Runner.t -> Experiment.figure
(** The paper's three panels — [workstation] (4a), [users] (4b),
    [server] (4c) — under the runner's settings and scope (cells keyed
    by span label ["fig4/<workload>/<scheme>/f<C>"]). *)
