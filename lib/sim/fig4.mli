(** Fig. 4 — server cache hit rate under an intervening client LRU cache:
    one series per server scheme (aggregating g=5, LRU, LFU), plotted
    against the client ("filter") capacity, server capacity fixed. *)

val default_filter_capacities : int list
(** 50–500 step 50, as in the paper. *)

val default_server_capacity : int
(** 300 files. *)

val panel :
  ?profiler:Agg_obs.Span.recorder ->
  ?sink_for:(scheme:string -> filter_capacity:int -> Agg_obs.Sink.t) ->
  ?settings:Experiment.settings ->
  ?filter_capacities:int list ->
  ?server_capacity:int ->
  ?group_size:int ->
  ?cooperative:bool ->
  Agg_workload.Profile.t ->
  Experiment.panel
(** Server hit rate (%) for one workload.

    [profiler] times each sweep cell as a span named
    ["fig4/<workload>/<scheme>/f<C>"]. [sink_for] supplies a per-cell
    event sink keyed by scheme label ("g5"/"lru"/"lfu") and filter
    capacity (default: no-op); per-cell sinks keep event sequences
    independent of [settings.jobs]. *)

val run : Experiment.Runner.t -> Experiment.figure
(** The paper's three panels — [workstation] (4a), [users] (4b),
    [server] (4c) — under the runner's settings, profiler and sinks
    (keyed by span label ["fig4/<workload>/<scheme>/f<C>"]). Preferred
    entry point; {!figure} is a thin wrapper kept for one release. *)

val figure :
  ?profiler:Agg_obs.Span.recorder -> ?settings:Experiment.settings -> unit -> Experiment.figure
(** Deprecated spelling of {!run} (no sinks). *)
