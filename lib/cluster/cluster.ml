module Cache = Agg_cache.Cache
module Tracker = Agg_successor.Tracker
module Scheme = Agg_system.Scheme
module Cost_model = Agg_system.Cost_model
module Plan = Agg_faults.Plan
module Resilience = Agg_faults.Resilience
module Counters = Agg_faults.Counters
module Sink = Agg_obs.Sink

type metadata_placement = Owner_node | Replicated_with_group | Client_side

let placement_name = function
  | Owner_node -> "owner"
  | Replicated_with_group -> "group"
  | Client_side -> "client"

let placement_of_string = function
  | "owner" -> Some Owner_node
  | "group" -> Some Replicated_with_group
  | "client" -> Some Client_side
  | _ -> None

let placements = [ Owner_node; Replicated_with_group; Client_side ]

type churn_op = Join of int | Leave of int

type config = {
  nodes : int;
  replicas : int;
  ring_seed : int;
  metadata : metadata_placement;
  clients : int;
  client_capacity : int;
  client_scheme : Scheme.t;
  node_capacity : int;
  node_scheme : Scheme.t;
  per_client_metadata : bool;
  write_invalidation : bool;
  cost : Cost_model.t;
  faults : Plan.config;
  resilience : Resilience.t;
  churn : (int * churn_op) list;
  scope : Agg_obs.Scope.t option;
}

let default_config =
  {
    nodes = 1;
    replicas = 1;
    ring_seed = 17;
    metadata = Owner_node;
    clients = 4;
    client_capacity = 150;
    client_scheme = Scheme.Aggregating Agg_core.Config.default;
    node_capacity = 300;
    node_scheme = Scheme.Aggregating Agg_core.Config.default;
    per_client_metadata = true;
    write_invalidation = true;
    cost = Cost_model.lan;
    faults = Plan.none;
    resilience = Resilience.default;
    churn = [];
    scope = None;
  }

type result = {
  accesses : int;
  client_hits : int;
  server_requests : int;
  server_hits : int;
  store_fetches : int;
  invalidations : int;
  per_client_hit_rate : (int * float) list;
  routed_fetches : int;
  failovers : int;
  cross_shard_members : int;
  slowed_fetches : int;
  rebalances : int;
  moved_files : int;
  mean_latency : float;
  p95_latency : float;
  per_node_requests : (int * int) list;
  faults : Counters.t;
}

type node_state = {
  node_id : int;
  cache : Cache.t;
  tracker : Tracker.t;
  plan : Plan.t;
  mutable requests : int;
}

type client_state = {
  cache : Cache.t;
  mutable tracker : Tracker.t;  (** observed only under [Client_side] *)
  mutable accesses : int;
  mutable hits : int;
}

type state = {
  config : config;
  metadata_config : Agg_core.Config.t;
  base_plan : Plan.t;  (** client crashes and node 0 — Fleet's plan verbatim *)
  client_states : client_state array;
  mutable ring : Ring.t;
  mutable node_states : node_state list;  (** sorted by [node_id] *)
  mutable pending_churn : (int * churn_op) list;  (** sorted by time *)
  mutable retired : (int * int) list;  (** departed nodes' request counts *)
  counters : Counters.t;
  latencies : float Agg_util.Vec.t;
  mutable server_requests : int;
  mutable server_hits : int;
  mutable store_fetches : int;
  mutable invalidations : int;
  mutable routed_fetches : int;
  mutable failovers : int;
  mutable cross_shard_members : int;
  mutable slowed_fetches : int;
  mutable rebalances : int;
  mutable moved_files : int;
  mutable now : int;
}

let validate config =
  if config.nodes <= 0 then
    invalid_arg (Printf.sprintf "Cluster.run: nodes must be positive (got %d)" config.nodes);
  if config.replicas <= 0 then
    invalid_arg (Printf.sprintf "Cluster.run: replicas must be positive (got %d)" config.replicas);
  if config.clients <= 0 then
    invalid_arg (Printf.sprintf "Cluster.run: clients must be positive (got %d)" config.clients);
  if config.client_capacity <= 0 then
    invalid_arg
      (Printf.sprintf "Cluster.run: client_capacity must be positive (got %d)"
         config.client_capacity);
  if config.node_capacity <= 0 then
    invalid_arg
      (Printf.sprintf "Cluster.run: node_capacity must be positive (got %d)" config.node_capacity);
  Scheme.validate config.client_scheme;
  Scheme.validate config.node_scheme;
  Plan.validate config.faults;
  Resilience.validate config.resilience;
  List.iter
    (fun (time, _) ->
      if time < 0 then
        invalid_arg (Printf.sprintf "Cluster.run: churn time must be non-negative (got %d)" time))
    config.churn

(* Node 0 reuses the plan config's own seed so the N = 1 cluster replays
   Fleet's fault decisions exactly; every other node faults on a seed
   derived from it, so outage windows fall independently per node. *)
let node_plan (config : config) node =
  if node = 0 then Plan.make config.faults
  else
    let stream = Agg_util.Prng.derive (Agg_util.Prng.create ~seed:config.faults.Plan.seed ()) node in
    let seed = Int64.to_int (Int64.shift_right_logical (Agg_util.Prng.bits64 stream) 1) in
    Plan.make { config.faults with Plan.seed }

let make_node config metadata_config node_id =
  {
    node_id;
    cache = Cache.create (Scheme.cache_kind config.node_scheme) ~capacity:config.node_capacity;
    tracker =
      Tracker.create ~capacity:metadata_config.Agg_core.Config.successor_capacity
        ~policy:metadata_config.Agg_core.Config.metadata_policy
        ~per_client:config.per_client_metadata ();
    plan = node_plan config node_id;
    requests = 0;
  }

let make_client_tracker metadata_config =
  Tracker.create ~capacity:metadata_config.Agg_core.Config.successor_capacity
    ~policy:metadata_config.Agg_core.Config.metadata_policy ()

let make_state config =
  validate config;
  let metadata_config =
    match (Scheme.group_config config.client_scheme, Scheme.group_config config.node_scheme) with
    | Some c, _ | _, Some c -> c
    | None, None -> Agg_core.Config.default
  in
  {
    config;
    metadata_config;
    base_plan = Plan.make config.faults;
    client_states =
      Array.init config.clients (fun _ ->
          {
            cache =
              Cache.create (Scheme.cache_kind config.client_scheme)
                ~capacity:config.client_capacity;
            tracker = make_client_tracker metadata_config;
            accesses = 0;
            hits = 0;
          });
    ring = Ring.create ~seed:config.ring_seed ~nodes:config.nodes ();
    node_states = List.init config.nodes (make_node config metadata_config);
    pending_churn = List.stable_sort (fun (a, _) (b, _) -> compare a b) config.churn;
    retired = [];
    counters = Counters.create ();
    latencies = Agg_util.Vec.create ();
    server_requests = 0;
    server_hits = 0;
    store_fetches = 0;
    invalidations = 0;
    routed_fetches = 0;
    failovers = 0;
    cross_shard_members = 0;
    slowed_fetches = 0;
    rebalances = 0;
    moved_files = 0;
    now = 0;
  }

let node_state st id =
  match List.find_opt (fun ns -> ns.node_id = id) st.node_states with
  | Some ns -> ns
  | None -> invalid_arg (Printf.sprintf "Cluster: node %d has no state" id)

let live_replicas st = min st.config.replicas (Ring.node_count st.ring)

(* --- churn ------------------------------------------------------------- *)

let insert_node_sorted node_states fresh =
  List.stable_sort (fun a b -> compare a.node_id b.node_id) (fresh :: node_states)

let apply_op st op =
  match op with
  | Join node ->
      let ring = Ring.add st.ring node in
      let k = min st.config.replicas (Ring.node_count ring) in
      let fresh = make_node st.config st.metadata_config node in
      let moved = ref 0 in
      (* Every existing node drops the cached files the new ring takes out
         of its group; those now owned by the joiner are handed over cold.
         Consistent hashing keeps this minimal: only groups that gained
         [node] change at all. *)
      List.iter
        (fun ns ->
          List.iter
            (fun f ->
              if not (List.mem ns.node_id (Ring.group ring ~replicas:k f)) then begin
                Cache.remove ns.cache f;
                if List.mem node (Ring.group ring ~replicas:k f) && not (Cache.mem fresh.cache f)
                then Cache.insert_cold fresh.cache f;
                incr moved
              end)
            (Cache.contents ns.cache))
        st.node_states;
      st.ring <- ring;
      st.node_states <- insert_node_sorted st.node_states fresh;
      st.rebalances <- st.rebalances + 1;
      st.moved_files <- st.moved_files + !moved;
      if Sink.enabled (Agg_obs.Scope.sink st.config.scope) then
        Sink.emit (Agg_obs.Scope.sink st.config.scope) (Agg_obs.Event.Ring_rebalance { node; joined = true; moved = !moved })
  | Leave node ->
      let ring = Ring.remove st.ring node in
      let k = min st.config.replicas (Ring.node_count ring) in
      let departing = node_state st node in
      st.node_states <- List.filter (fun ns -> ns.node_id <> node) st.node_states;
      let moved = ref 0 in
      (* The departing node hands each cached file to the file's new
         primary; its successor metadata leaves with it (the Owner_node
         placement pays for that, Replicated_with_group does not). *)
      List.iter
        (fun f ->
          match Ring.group ring ~replicas:k f with
          | target :: _ ->
              let ts = node_state st target in
              if not (Cache.mem ts.cache f) then begin
                Cache.insert_cold ts.cache f;
                incr moved
              end
          | [] -> ())
        (Cache.contents departing.cache);
      st.ring <- ring;
      st.retired <- (node, departing.requests) :: st.retired;
      st.rebalances <- st.rebalances + 1;
      st.moved_files <- st.moved_files + !moved;
      if Sink.enabled (Agg_obs.Scope.sink st.config.scope) then
        Sink.emit (Agg_obs.Scope.sink st.config.scope)
          (Agg_obs.Event.Ring_rebalance { node; joined = false; moved = !moved })

let rec apply_churn st ~time =
  match st.pending_churn with
  | (t, op) :: rest when t <= time ->
      st.pending_churn <- rest;
      apply_op st op;
      apply_churn st ~time
  | _ -> ()

(* --- serving ----------------------------------------------------------- *)

let invalidate_others st ~writer file =
  Array.iteri
    (fun i cs ->
      if i <> writer && Cache.mem cs.cache file then begin
        Cache.remove cs.cache file;
        st.invalidations <- st.invalidations + 1
      end)
    st.client_states

(* Fleet's resilience loop with one extension: attempt [a] targets group
   member [a mod k], so exhausting one node's retry fails over to the next
   replica instead of re-asking the dead one. At k = 1 the counter
   sequence is exactly [Fleet.fetch_survives]. *)
let rec attempt_route st ~group_nodes ~time ~attempt ~waited ~file =
  let r = st.config.resilience in
  let len = List.length group_nodes in
  let target = List.nth group_nodes (attempt mod len) in
  let plan = (node_state st target).plan in
  let down = Plan.server_down plan ~time in
  if not (down || Plan.message_lost plan ~time ~attempt) then `Served (target, attempt, waited)
  else begin
    if down then st.counters.Counters.outage_denials <- st.counters.Counters.outage_denials + 1
    else st.counters.Counters.lost_messages <- st.counters.Counters.lost_messages + 1;
    st.counters.Counters.timeouts <- st.counters.Counters.timeouts + 1;
    if Sink.enabled (Agg_obs.Scope.sink st.config.scope) then
      Sink.emit (Agg_obs.Scope.sink st.config.scope) (Agg_obs.Event.Fetch_timeout { file; attempt });
    let waited = waited +. Resilience.failure_cost_ms r ~attempt in
    if attempt < r.Resilience.max_retries then begin
      st.counters.Counters.retries <- st.counters.Counters.retries + 1;
      let next = List.nth group_nodes ((attempt + 1) mod len) in
      if next <> target then begin
        st.failovers <- st.failovers + 1;
        if Sink.enabled (Agg_obs.Scope.sink st.config.scope) then
          Sink.emit (Agg_obs.Scope.sink st.config.scope)
            (Agg_obs.Event.Replica_failover { file; failed = target; target = next })
      end;
      attempt_route st ~group_nodes ~time ~attempt:(attempt + 1) ~waited ~file
    end
    else `Degraded waited
  end

(* Reconstruct the routing phases of a finished [attempt_route] loop for
   the trace context: per failed attempt, its timeout budget, the backoff
   before the retry, and a zero-width ["route"] marker when the retry
   fails over to another replica. *)
let push_route_phases ctx st ~group_nodes ~failures =
  let r = st.config.resilience in
  let len = List.length group_nodes in
  for a = 0 to failures - 1 do
    let target = List.nth group_nodes (a mod len) in
    Agg_obs.Trace_ctx.push ctx ~cat:"timeout"
      (Printf.sprintf "attempt%d n%d" a target)
      ~dur_ms:r.Resilience.timeout_ms;
    if a < r.Resilience.max_retries then begin
      Agg_obs.Trace_ctx.push ctx ~cat:"backoff"
        (Printf.sprintf "backoff%d" (a + 1))
        ~dur_ms:(Resilience.backoff_ms r ~attempt:(a + 1));
      let next = List.nth group_nodes ((a + 1) mod len) in
      if next <> target then
        Agg_obs.Trace_ctx.push ctx ~cat:"route"
          (Printf.sprintf "failover n%d->n%d" target next)
          ~dur_ms:0.0
    end
  done

let serve st ~client ~time ~tracing file =
  st.server_requests <- st.server_requests + 1;
  let k = live_replicas st in
  let group_nodes = Ring.group st.ring ~replicas:k file in
  let primary = List.hd group_nodes in
  let cs = st.client_states.(client) in
  (* §3: the miss is piggy-backed to wherever the metadata lives *)
  (match st.config.metadata with
  | Owner_node -> Tracker.observe (node_state st primary).tracker ~client file
  | Replicated_with_group ->
      List.iter (fun n -> Tracker.observe (node_state st n).tracker ~client file) group_nodes
  | Client_side -> Tracker.observe cs.tracker file);
  let outcome =
    if not (Plan.enabled st.base_plan) then `Served (primary, 0, 0.0)
    else attempt_route st ~group_nodes ~time ~attempt:0 ~waited:0.0 ~file
  in
  (match tracing with
  | Some ctx ->
      let failures =
        match outcome with
        | `Served (_, a, _) -> a
        | `Degraded _ -> st.config.resilience.Resilience.max_retries + 1
      in
      push_route_phases ctx st ~group_nodes ~failures
  | None -> ());
  match outcome with
  | `Degraded waited ->
      (* Retry budget dry across the whole group: degraded single-file
         fallback through the primary, exactly Fleet's degraded path. *)
      st.counters.Counters.degraded_fetches <- st.counters.Counters.degraded_fetches + 1;
      if Sink.enabled (Agg_obs.Scope.sink st.config.scope) then
        Sink.emit (Agg_obs.Scope.sink st.config.scope) (Agg_obs.Event.Fetch_degraded { file; dropped = 0 });
      let ns = node_state st primary in
      ns.requests <- ns.requests + 1;
      (match Agg_obs.Scope.series st.config.scope with
      | Some s ->
          Agg_obs.Series.observe_degraded s ~index:time;
          (* the fallback is served by the primary: mirror [ns.requests] *)
          Agg_obs.Series.observe_node s ~index:time ~node:primary
      | None -> ());
      let served_from_memory = Cache.access ns.cache file in
      if served_from_memory then st.server_hits <- st.server_hits + 1
      else st.store_fetches <- st.store_fetches + 1;
      let fallback =
        Cost_model.demand_fetch_latency st.config.cost ~served_from_disk:(not served_from_memory)
      in
      (match tracing with
      | Some ctx ->
          Agg_obs.Trace_ctx.push ctx ~cat:"degraded"
            (Printf.sprintf "degraded f%d@n%d" file primary)
            ~dur_ms:fallback
      | None -> ());
      waited +. fallback
  | `Served (node, attempt, waited) ->
      let ns = node_state st node in
      st.routed_fetches <- st.routed_fetches + 1;
      ns.requests <- ns.requests + 1;
      if Sink.enabled (Agg_obs.Scope.sink st.config.scope) then
        Sink.emit (Agg_obs.Scope.sink st.config.scope) (Agg_obs.Event.Node_routed { file; node });
      (match Agg_obs.Scope.series st.config.scope with
      | Some s -> Agg_obs.Series.observe_node s ~index:time ~node
      | None -> ());
      (* The group proposal comes from whatever metadata the serving party
         holds. A failover target under [Owner_node] has never observed
         this file, so its proposal naturally collapses to the anchor. *)
      let source_tracker =
        match st.config.metadata with
        | Owner_node | Replicated_with_group -> ns.tracker
        | Client_side -> cs.tracker
      in
      let group =
        match Scheme.group_config st.config.client_scheme with
        | Some c ->
            Agg_core.Group_builder.build source_tracker ~group_size:c.Agg_core.Config.group_size
              file
        | None -> [ file ]
      in
      let served_from_memory = Cache.access ns.cache file in
      if served_from_memory then st.server_hits <- st.server_hits + 1
      else begin
        st.store_fetches <- st.store_fetches + 1;
        (* an aggregating node stages its own readahead off its metadata;
           under [Client_side] its tracker is empty and this is a no-op *)
        match Scheme.group_config st.config.node_scheme with
        | Some c ->
            let staged =
              Agg_core.Group_builder.build ns.tracker ~group_size:c.Agg_core.Config.group_size file
            in
            let members = match staged with _ :: rest -> rest | [] -> [] in
            List.iter
              (fun m -> if not (Cache.mem ns.cache m) then st.store_fetches <- st.store_fetches + 1)
              members;
            ignore (Cache.insert_cold_group ns.cache members)
        | None -> ()
      end;
      (* members travel to the client; ones this node does not replicate
         come straight off the store and are never staged here *)
      let members = match group with _ :: rest -> rest | [] -> [] in
      List.iter
        (fun m ->
          if List.mem node (Ring.group st.ring ~replicas:k m) then begin
            if not (Cache.mem ns.cache m) then begin
              st.store_fetches <- st.store_fetches + 1;
              Cache.insert_cold ns.cache m
            end
          end
          else begin
            st.cross_shard_members <- st.cross_shard_members + 1;
            st.store_fetches <- st.store_fetches + 1
          end)
        members;
      ignore (Cache.insert_cold_group cs.cache members);
      let base =
        Cost_model.demand_fetch_latency st.config.cost ~served_from_disk:(not served_from_memory)
      in
      let served_ms =
        if Plan.enabled st.base_plan then begin
          let multiplier = Plan.latency_multiplier ns.plan ~time ~attempt in
          (* kept out of [st.counters] so the fault block stays
             Fleet-comparable at N = 1 under any plan *)
          if multiplier > 1.0 then st.slowed_fetches <- st.slowed_fetches + 1;
          base *. multiplier
        end
        else base
      in
      (match tracing with
      | Some ctx ->
          Agg_obs.Trace_ctx.push ctx ~cat:"fetch"
            (Printf.sprintf "fetch f%d@n%d" file node)
            ~dur_ms:served_ms
      | None -> ());
      waited +. served_ms

let access st (e : Agg_trace.Event.t) =
  let time = st.now in
  st.now <- time + 1;
  apply_churn st ~time;
  let client = e.Agg_trace.Event.client mod st.config.clients in
  let cs = st.client_states.(client) in
  if Plan.enabled st.base_plan && Plan.client_crashes st.base_plan ~time ~client then begin
    let wiped = Cache.size cs.cache in
    Cache.clear cs.cache;
    (match st.config.metadata with
    | Client_side ->
        (* client-held metadata dies with the client — the contrast the
           paper's §3 placement argument predicts *)
        cs.tracker <- make_client_tracker st.metadata_config
    | Owner_node | Replicated_with_group -> ());
    st.counters.Counters.crashes <- st.counters.Counters.crashes + 1;
    if Sink.enabled (Agg_obs.Scope.sink st.config.scope) then
      Sink.emit (Agg_obs.Scope.sink st.config.scope) (Agg_obs.Event.Client_crashed { client; wiped })
  end;
  cs.accesses <- cs.accesses + 1;
  let file = e.Agg_trace.Event.file in
  let tracing =
    match Agg_obs.Scope.trace_ctx st.config.scope with
    | Some ctx when Agg_obs.Trace_ctx.sampled ctx ~request:time -> Some ctx
    | _ -> None
  in
  let hit = Cache.access cs.cache file in
  let latency =
    if hit then begin
      cs.hits <- cs.hits + 1;
      let served = st.config.cost.Cost_model.client_memory in
      (match tracing with
      | Some ctx -> Agg_obs.Trace_ctx.push ctx ~cat:"hit" "client hit" ~dur_ms:served
      | None -> ());
      served
    end
    else serve st ~client ~time ~tracing file
  in
  (match Agg_obs.Scope.trace_ctx st.config.scope with
  | Some ctx -> Agg_obs.Trace_ctx.commit ctx ~request:time ~file ~latency_ms:latency
  | None -> ());
  (match Agg_obs.Scope.series st.config.scope with
  | Some s ->
      Agg_obs.Series.observe_access s ~index:time ~hit;
      Agg_obs.Series.observe_latency s ~index:time
        ~us:(int_of_float ((latency *. 1000.0) +. 0.5))
  | None -> ());
  Agg_util.Vec.push st.latencies latency;
  if st.config.write_invalidation && Agg_trace.Event.is_write e then
    invalidate_others st ~writer:client file

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (Float.of_int (n - 1) *. p) in
    sorted.(idx)

let per_node_requests st =
  let all = List.rev_append st.retired (List.map (fun ns -> (ns.node_id, ns.requests)) st.node_states) in
  let sorted = List.sort compare all in
  (* a node that left and re-joined appears twice: sum per id *)
  List.fold_left
    (fun acc (id, n) ->
      match acc with (id', n') :: rest when id' = id -> (id, n + n') :: rest | _ -> (id, n) :: acc)
    [] sorted
  |> List.rev

let run config trace =
  let st = make_state config in
  Agg_trace.Trace.iter (access st) trace;
  let accesses = Array.fold_left (fun acc cs -> acc + cs.accesses) 0 st.client_states in
  let client_hits = Array.fold_left (fun acc cs -> acc + cs.hits) 0 st.client_states in
  let latencies = Agg_util.Vec.to_array st.latencies in
  let total = Array.fold_left ( +. ) 0.0 latencies in
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  {
    accesses;
    client_hits;
    server_requests = st.server_requests;
    server_hits = st.server_hits;
    store_fetches = st.store_fetches;
    invalidations = st.invalidations;
    per_client_hit_rate =
      Array.to_list
        (Array.mapi (fun i cs -> (i, Agg_util.Stats.ratio cs.hits cs.accesses)) st.client_states);
    routed_fetches = st.routed_fetches;
    failovers = st.failovers;
    cross_shard_members = st.cross_shard_members;
    slowed_fetches = st.slowed_fetches;
    rebalances = st.rebalances;
    moved_files = st.moved_files;
    mean_latency =
      (if Array.length latencies = 0 then 0.0 else total /. float_of_int (Array.length latencies));
    p95_latency = percentile sorted 0.95;
    per_node_requests = per_node_requests st;
    faults = st.counters;
  }

let fleet_view (r : result) : Agg_system.Fleet.result =
  {
    Agg_system.Fleet.accesses = r.accesses;
    client_hits = r.client_hits;
    server_requests = r.server_requests;
    server_hits = r.server_hits;
    store_fetches = r.store_fetches;
    invalidations = r.invalidations;
    per_client_hit_rate = r.per_client_hit_rate;
    faults = Counters.copy r.faults;
  }

let client_hit_rate (r : result) = Agg_util.Stats.ratio r.client_hits r.accesses
let server_hit_rate (r : result) = Agg_util.Stats.ratio r.server_hits r.server_requests

let reconcile digest (r : result) =
  let checks =
    [
      ("node_routes vs routed_fetches", Agg_obs.Digest.node_routes digest, r.routed_fetches);
      ("replica_failovers vs failovers", Agg_obs.Digest.replica_failovers digest, r.failovers);
      ("ring_rebalances vs rebalances", Agg_obs.Digest.ring_rebalances digest, r.rebalances);
      ("fetch_timeouts vs timeouts", Agg_obs.Digest.fetch_timeouts digest, r.faults.Counters.timeouts);
      ( "degraded_fetches vs degraded",
        Agg_obs.Digest.degraded_fetches digest,
        r.faults.Counters.degraded_fetches );
      ("client_crashes vs crashes", Agg_obs.Digest.client_crashes digest, r.faults.Counters.crashes);
      ( "routed + degraded vs server_requests",
        r.routed_fetches + r.faults.Counters.degraded_fetches,
        r.server_requests );
    ]
  in
  match
    List.filter_map
      (fun (label, a, b) ->
        if a = b then None else Some (Printf.sprintf "%s: %d <> %d" label a b))
      checks
  with
  | [] -> Ok ()
  | mismatches -> Error (String.concat "; " mismatches)

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "accesses=%d client_hits=%d (%.1f%%) cluster: %d requests, %d hits (%.1f%%), %d store fetches, \
     %d invalidations, %d routed, %d failovers, %d cross-shard, %d rebalances (%d moved), \
     mean=%.3fms p95=%.3fms"
    r.accesses r.client_hits
    (100.0 *. client_hit_rate r)
    r.server_requests r.server_hits
    (100.0 *. server_hit_rate r)
    r.store_fetches r.invalidations r.routed_fetches r.failovers r.cross_shard_members r.rebalances
    r.moved_files r.mean_latency r.p95_latency
