module Prng = Agg_util.Prng

type t = {
  seed : int;
  points_per_node : int;
  members : int list;
  points : int array;
  owners : int array;
  (* Parent stream for per-file hashes; [Prng.derive] never advances it,
     so sharing one value keeps [owner]/[group] pure. Stream index -1 is
     reserved for files, node ids (>= 0) index the point streams. *)
  file_stream : Prng.t;
}

let mask62 bits = Int64.to_int (Int64.shift_right_logical bits 2)

let point_position base ~node ~index =
  mask62 (Prng.bits64 (Prng.derive (Prng.derive base node) index))

let build ~seed ~points_per_node members =
  let base = Prng.create ~seed () in
  let pairs =
    List.concat_map
      (fun node ->
        List.init points_per_node (fun index -> (point_position base ~node ~index, node)))
      members
  in
  let arr = Array.of_list pairs in
  Array.sort compare arr;
  {
    seed;
    points_per_node;
    members = List.sort_uniq compare members;
    points = Array.map fst arr;
    owners = Array.map snd arr;
    file_stream = Prng.derive base (-1);
  }

let create ?(points_per_node = 64) ~seed ~nodes () =
  if nodes <= 0 then invalid_arg "Ring.create: nodes must be positive";
  if points_per_node <= 0 then invalid_arg "Ring.create: points_per_node must be positive";
  build ~seed ~points_per_node (List.init nodes Fun.id)

let seed t = t.seed
let points_per_node t = t.points_per_node
let members t = t.members
let node_count t = List.length t.members
let contains t node = List.mem node t.members

let add t node =
  if node < 0 then invalid_arg "Ring.add: node must be non-negative";
  if contains t node then invalid_arg (Printf.sprintf "Ring.add: node %d already a member" node);
  build ~seed:t.seed ~points_per_node:t.points_per_node (node :: t.members)

let remove t node =
  if not (contains t node) then
    invalid_arg (Printf.sprintf "Ring.remove: node %d is not a member" node);
  if node_count t = 1 then invalid_arg "Ring.remove: cannot remove the last member";
  build ~seed:t.seed ~points_per_node:t.points_per_node
    (List.filter (fun m -> m <> node) t.members)

let file_position t file = mask62 (Prng.bits64 (Prng.derive t.file_stream file))

(* Index of the first point at or after [position], wrapping to 0. *)
let successor_index t position =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.points.(mid) >= position then hi := mid else lo := mid + 1
  done;
  if !lo = n then 0 else !lo

let owner t file = t.owners.(successor_index t (file_position t file))

let group t ~replicas file =
  if replicas <= 0 then invalid_arg "Ring.group: replicas must be positive";
  let n = Array.length t.points in
  let want = min replicas (node_count t) in
  let start = successor_index t (file_position t file) in
  let rec walk offset acc found =
    if found = want then List.rev acc
    else
      let node = t.owners.((start + offset) mod n) in
      if List.mem node acc then walk (offset + 1) acc found
      else walk (offset + 1) (node :: acc) (found + 1)
  in
  walk 0 [] 0

let pp ppf t =
  Format.fprintf ppf "ring[seed=%d nodes=%a points=%d]" t.seed
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    t.members (Array.length t.points)
