(** Seeded consistent-hash ring with fixed role-symmetric replication
    groups (the apothik Phase-3 design: a file's {e group} is a set of
    nodes with identical roles — no master, no replica — so any member
    can serve it and node loss needs no re-election).

    Every node contributes a fixed number of points on a 62-bit ring;
    point positions are pure functions of [(seed, node, point index)]
    drawn through {!Agg_util.Prng.derive}, so a ring is fully determined
    by its seed and membership. A file hashes to a ring position and is
    owned by the {e replication group} of the first [k] distinct nodes
    found walking clockwise from it; the first of those is the file's
    {e primary} owner.

    Because point positions do not depend on membership, {!add} and
    {!remove} rebalance minimally: after a join the only files whose
    group changes are those that now include the new node, and after a
    leave groups only gain members — the consistent-hashing guarantee
    the rebalancing tests pin down. *)

type t
(** Immutable ring value; {!add}/{!remove} return new rings. *)

val create : ?points_per_node:int -> seed:int -> nodes:int -> unit -> t
(** [create ~seed ~nodes ()] is a ring of the nodes [0 .. nodes - 1] with
    [points_per_node] (default 64) points each.
    @raise Invalid_argument when [nodes] or [points_per_node] is not
    positive. *)

val seed : t -> int
val points_per_node : t -> int

val members : t -> int list
(** Current member ids, sorted ascending. *)

val node_count : t -> int
val contains : t -> int -> bool

val add : t -> int -> t
(** [add t node] is [t] with [node] joined.
    @raise Invalid_argument when [node] is negative or already a
    member. *)

val remove : t -> int -> t
(** [remove t node] is [t] with [node] departed.
    @raise Invalid_argument when [node] is not a member or is the last
    remaining member. *)

val owner : t -> int -> int
(** [owner t file] is the primary owner of [file]: the node of the first
    ring point at or after [file]'s hash position (wrapping). A pure
    function of the ring's seed and membership. *)

val group : t -> replicas:int -> int -> int list
(** [group t ~replicas file] is [file]'s replication group: the first
    [replicas] distinct nodes walking clockwise from [file]'s position,
    primary first. When [replicas] exceeds the member count the group is
    every member (clamped, so a shrinking cluster keeps serving).
    [group t ~replicas:1 file = [owner t file]].
    @raise Invalid_argument when [replicas] is not positive. *)

val pp : Format.formatter -> t -> unit
