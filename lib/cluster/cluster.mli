(** A sharded multi-node server cluster in front of the client fleet.

    This generalises {!Agg_system.Fleet} from one server to a {!Ring} of
    N role-symmetric nodes: every file id is owned by a replication group
    of [replicas] nodes, any of which can serve it (the apothik Phase-3
    design — no master/replica asymmetry, so failover is just "ask the
    next group member"). The client-side behaviour, cache semantics and
    fault/resilience accounting are exactly Fleet's; what the cluster
    adds is routing, replica failover, node churn with deterministic
    rebalancing, and a choice of where the successor metadata lives.

    {b Degenerate-case guarantee}: with [nodes = 1], [replicas = 1],
    [metadata = Owner_node] and no churn, a run is {e byte-identical} to
    {!Agg_system.Fleet.run} on the same trace and fault plan — same
    counters, same per-client hit rates, same fault accounting
    ({!fleet_view} extracts the comparable record). Node 0 always reuses
    the fault plan's own seed; nodes [> 0] fault independently on seeds
    drawn through {!Agg_util.Prng.derive}.

    {b Metadata placement} ({!metadata_placement}) is a config axis:

    - [Owner_node] — each node tracks successors of the files it
      primarily owns. Matches Fleet at N = 1; at larger N each node only
      links requests {e it} sees, and a failover target usually has no
      metadata for the file, so groups degenerate — the cost of sharding
      the metadata with the data.
    - [Replicated_with_group] — an observation is replicated to every
      group member, so any serving replica can build full groups at the
      price of k-way metadata write amplification.
    - [Client_side] — each client tracks its own stream and proposes
      groups itself; nodes hold no metadata (and stage no server-side
      readahead), and a client crash now destroys its metadata too — the
      paper's §3 argument for server-side placement, made measurable.

    All decisions flow through {!Agg_util.Prng}; runs are pure functions
    of (config, trace), independent of sweep layout or [--jobs]. *)

type metadata_placement = Owner_node | Replicated_with_group | Client_side

val placement_name : metadata_placement -> string
(** ["owner"], ["group"], ["client"] — stable labels for tables/CLI. *)

val placement_of_string : string -> metadata_placement option
(** Inverse of {!placement_name}. *)

val placements : metadata_placement list
(** All three placements, in sweep order. *)

type churn_op =
  | Join of int  (** node id joins the ring *)
  | Leave of int  (** node id departs, handing cached files over *)

type config = {
  nodes : int;  (** initial node count; ids [0 .. nodes-1] *)
  replicas : int;  (** replication-group size k (clamped to live nodes) *)
  ring_seed : int;  (** placement seed for the consistent-hash ring *)
  metadata : metadata_placement;
  clients : int;
  client_capacity : int;
  client_scheme : Agg_system.Scheme.t;
  node_capacity : int;  (** per-node server cache capacity *)
  node_scheme : Agg_system.Scheme.t;
  per_client_metadata : bool;
  write_invalidation : bool;
  cost : Agg_system.Cost_model.t;  (** latency model of the fetch path *)
  faults : Agg_faults.Plan.config;
      (** node 0 uses this seed verbatim; node [i > 0] uses a seed
          derived from it, so nodes fail independently *)
  resilience : Agg_faults.Resilience.t;
  churn : (int * churn_op) list;
      (** (time, op) pairs; an op fires just before the first access at
          [now >= time]. Ops beyond the trace never fire. *)
  scope : Agg_obs.Scope.t option;
      (** observability (default [None] = off, zero cost): the scope's
          [sink] receives ring/failover/timeout events; its [series]
          folds every access into the windowed time-series — hit/miss,
          demand latency (µs), degraded fetches and the per-node request
          load (degraded fallbacks count against the primary, mirroring
          [per_node_requests]); its [trace_ctx] records span trees for
          sampled requests — client hit, per-attempt timeout/backoff
          with replica-failover markers, group fetch at the serving node
          or degraded fallback at the primary — on the simulated
          clock *)
}

val default_config : config
(** Fleet's defaults (4 clients x 150 aggregating, 300-file aggregating
    server, per-client metadata, write invalidation, LAN costs, no
    faults) on a single-node, single-replica, [Owner_node] ring, with no
    scope (telemetry off). *)

type result = {
  accesses : int;
  client_hits : int;
  server_requests : int;
  server_hits : int;  (** summed over all node caches *)
  store_fetches : int;
  invalidations : int;
  per_client_hit_rate : (int * float) list;
  routed_fetches : int;  (** requests served by a live node *)
  failovers : int;
      (** retries re-aimed at a different group member than the attempt
          before them *)
  cross_shard_members : int;
      (** group members fetched from the store because the serving node
          is not in their replication group (never staged there) *)
  slowed_fetches : int;
      (** served fetches that rode a degraded link (kept out of
          [faults] so the counter block stays Fleet-comparable) *)
  rebalances : int;  (** churn ops applied *)
  moved_files : int;  (** cached files whose placement a rebalance changed *)
  mean_latency : float;  (** ms per access, client hits included *)
  p95_latency : float;
  per_node_requests : (int * int) list;
      (** node id -> fetches served (routed + degraded), departed nodes
          included *)
  faults : Agg_faults.Counters.t;
}

val run : config -> Agg_trace.Trace.t -> result
(** Replays the trace through the fleet-and-cluster pair. Deterministic.
    @raise Invalid_argument on an invalid config (non-positive counts or
    capacities, bad scheme/plan/resilience, negative churn time) or an
    inapplicable churn op (joining a present node, leaving an absent or
    the last node). *)

val fleet_view : result -> Agg_system.Fleet.result
(** The Fleet-comparable projection of a cluster result (fault counters
    copied). With [nodes = 1], [replicas = 1], [Owner_node] and no
    churn, [fleet_view (run config trace)] equals
    [Agg_system.Fleet.run _ trace] field for field. *)

val client_hit_rate : result -> float
val server_hit_rate : result -> float

val reconcile : Agg_obs.Digest.t -> result -> (unit, string) Stdlib.result
(** Cross-checks an event-stream digest against the result counters:
    routed fetches, failovers, rebalances, timeouts, degraded fetches,
    crashes, and the served = routed + degraded identity. [Ok ()] when
    every pair agrees, otherwise [Error] naming each mismatch. *)

val pp_result : Format.formatter -> result -> unit
