(** The aggregating *server* cache behind an intervening client cache
    (paper §4.3, Fig. 4).

    The client runs a plain cache (LRU in the paper) of the given filter
    capacity; only its misses reach the server. The server cache is
    managed either by a plain policy (LRU/LFU, the baselines) or by the
    aggregating scheme: per-file successor metadata maintained from the
    stream the server actually observes, with group fetches from backing
    store on server misses.

    By default no cooperation is assumed — the server learns from the
    *filtered* miss stream only. [cooperative:true] models clients that
    piggy-back full access statistics (§3): metadata is then fed the
    unfiltered sequence while data still moves only on client misses. *)

type scheme =
  | Plain of Agg_cache.Cache.kind  (** baseline server cache *)
  | Aggregating of Config.t  (** group retrieval per the paper *)

type t

val create :
  ?cooperative:bool ->
  ?obs:Agg_obs.Sink.t ->
  filter_kind:Agg_cache.Cache.kind ->
  filter_capacity:int ->
  server_capacity:int ->
  scheme:scheme ->
  unit ->
  t
(** When [obs] is an enabled sink the *server-side* decisions are
    reported to it: [Demand_hit]/[Demand_miss] for each request reaching
    the server (announced before the server cache mutates),
    [Successor_update] for each adjacency the tracker learns (the filtered
    miss stream, or the full sequence when [cooperative]),
    [Prefetch_issued]/[Prefetch_promoted], [Group_built] per server miss
    and [Evicted] per physical server-cache eviction. Client filter hits
    emit nothing — the sink sees what the server sees. The default no-op
    sink adds one branch per request and allocates nothing. *)

type outcome = Client_hit | Server_hit | Server_miss

val access : t -> Agg_trace.File_id.t -> outcome
val run : t -> Agg_trace.Trace.t -> Metrics.server
(** Feeds the whole trace through {!access}; metrics accumulate. *)

val run_files : t -> Agg_trace.File_id.t array -> Metrics.server
(** [run_files t files] is {!run} over a bare file-id sequence — the
    simulation only consumes file ids, so sweeps that already hold the id
    array (see [Trace_store.files]) can skip materialising a trace. *)

val metrics : t -> Metrics.server
