module Tracker = Agg_successor.Tracker

let take n list =
  let rec loop n acc = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: rest -> loop (n - 1) (x :: acc) rest
  in
  loop n [] list

(* Small groups: the requested file plus its most likely immediate
   successors (paper: "simply a matter of retrieving the requested file
   and one or two of its immediate successors"). *)
let immediate tracker ~want file =
  let distinct = List.filter (fun s -> s <> file) (Tracker.successors tracker file) in
  take want distinct

(* Large groups: follow the chain of most-likely immediate successors as
   far as possible. When the chain stalls (no metadata, or only files
   already in the group), fall back to the next-ranked successor of the
   most recently added member that still has one. *)
let transitive tracker ~want file =
  (* groups are single digits, so a linear scan of the accumulated members
     replaces a scratch table; [members] is newest-first and [file] is
     checked separately *)
  let members = ref [] in
  let count = ref 0 in
  let add f =
    members := f :: !members;
    incr count
  in
  let seen s = s = file || List.mem s !members in
  let first_unseen candidates = List.find_opt (fun s -> not (seen s)) candidates in
  let rec extend current =
    if !count < want then
      match first_unseen (Tracker.successors tracker current) with
      | Some next ->
          add next;
          extend next
      | None -> fallback (file :: List.rev !members)
  (* [chain] lists group members oldest-first; resume from the deepest
     member that still offers an unexplored successor. *)
  and fallback chain =
    if !count < want then
      let candidates =
        List.rev chain
        |> List.filter_map (fun m -> first_unseen (Tracker.successors tracker m))
      in
      match candidates with
      | next :: _ ->
          add next;
          extend next
      | [] -> ()
  in
  extend file;
  List.rev !members

let build ?(obs = Agg_obs.Sink.noop) tracker ~group_size file =
  if group_size <= 0 then invalid_arg "Group_builder.build: group_size must be positive";
  let want = group_size - 1 in
  let members =
    if want = 0 then []
    else if group_size <= 3 then immediate tracker ~want file
    else transitive tracker ~want file
  in
  if Agg_obs.Sink.enabled obs then
    Agg_obs.Sink.emit obs
      (Agg_obs.Event.Group_built { anchor = file; size = 1 + List.length members });
  file :: members
