type prefetch = { issued : int; used : int; evicted_unused : int }

let prefetch_utilisation p = Agg_util.Stats.ratio p.used p.issued

type client = { accesses : int; hits : int; demand_fetches : int; prefetch : prefetch }

let client_hit_rate c = Agg_util.Stats.ratio c.hits c.accesses

let pp_prefetch ppf p =
  Format.fprintf ppf "issued=%d used=%d (%.1f%%) evicted_unused=%d" p.issued p.used
    (100.0 *. prefetch_utilisation p)
    p.evicted_unused

let pp_client ppf c =
  Format.fprintf ppf "accesses=%d hits=%d (%.1f%%) demand_fetches=%d prefetch:[%a]" c.accesses
    c.hits
    (100.0 *. client_hit_rate c)
    c.demand_fetches pp_prefetch c.prefetch

type server = {
  client_accesses : int;
  server_requests : int;
  server_hits : int;
  store_fetches : int;
  prefetch : prefetch;
}

let server_hit_rate s = Agg_util.Stats.ratio s.server_hits s.server_requests

let pp_server ppf s =
  Format.fprintf ppf
    "client_accesses=%d server_requests=%d server_hits=%d (%.1f%%) store_fetches=%d prefetch:[%a]"
    s.client_accesses s.server_requests s.server_hits
    (100.0 *. server_hit_rate s)
    s.store_fetches pp_prefetch s.prefetch

type weighted = Agg_cache.Cache.weighted_stats = {
  bytes_accessed : int;
  bytes_hit : int;
  cost_fetched : int;
  cost_prefetched : int;
}

let byte_weighted_hit_rate w = Agg_util.Stats.ratio w.bytes_hit w.bytes_accessed
let total_retrieval_cost w = w.cost_fetched + w.cost_prefetched

let pp_weighted ppf w =
  Format.fprintf ppf "bytes=%d/%d (%.1f%%) cost: fetched=%d prefetched=%d total=%d" w.bytes_hit
    w.bytes_accessed
    (100.0 *. byte_weighted_hit_rate w)
    w.cost_fetched w.cost_prefetched (total_retrieval_cost w)

(* --- event-stream reconciliation ----------------------------------------- *)

let check_all pairs =
  let mismatches =
    List.filter_map
      (fun (label, expected, actual) ->
        if expected = actual then None
        else Some (Printf.sprintf "%s: metrics %d vs events %d" label expected actual))
      pairs
  in
  match mismatches with [] -> Ok () | ms -> Error (String.concat "; " ms)

let reconcile_client digest c =
  check_all
    [
      ("accesses", c.accesses, Agg_obs.Digest.accesses digest);
      ("hits", c.hits, Agg_obs.Digest.demand_hits digest);
      ("demand_fetches", c.demand_fetches, Agg_obs.Digest.demand_misses digest);
      ("prefetch.issued", c.prefetch.issued, Agg_obs.Digest.prefetch_issued digest);
      ("prefetch.used", c.prefetch.used, Agg_obs.Digest.prefetch_promoted digest);
      ( "prefetch.evicted_unused",
        c.prefetch.evicted_unused,
        Agg_obs.Digest.evicted_unused digest );
      ("groups = demand_fetches", c.demand_fetches, Agg_obs.Digest.groups_built digest);
    ]

let reconcile_server digest s =
  check_all
    [
      ("server_requests", s.server_requests, Agg_obs.Digest.accesses digest);
      ("server_hits", s.server_hits, Agg_obs.Digest.demand_hits digest);
      ( "store_fetches",
        s.store_fetches,
        Agg_obs.Digest.demand_misses digest + Agg_obs.Digest.prefetch_issued digest );
      ("prefetch.issued", s.prefetch.issued, Agg_obs.Digest.prefetch_issued digest);
      ("prefetch.used", s.prefetch.used, Agg_obs.Digest.prefetch_promoted digest);
      ( "prefetch.evicted_unused",
        s.prefetch.evicted_unused,
        Agg_obs.Digest.evicted_unused digest );
    ]
