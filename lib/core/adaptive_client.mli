(** Adaptive group sizing — the paper's future-work question "forming
    groups of arbitrary size", answered with a feedback controller: watch
    the utilisation of recent speculative fetches and grow the group while
    speculation keeps paying, shrink it when prefetched files die unused.

    Every [window] demand fetches, the utilisation over that window
    (members used / members issued) is compared with two thresholds:
    above [raise_above] the group grows by one (up to [max_group]); below
    [lower_below] it shrinks by one (down to [min_group]). With
    [min_group = max_group] this is exactly a fixed-size cache. *)

type t

val create :
  ?config:Config.t ->
  ?obs:Agg_obs.Sink.t ->
  ?min_group:int ->
  ?max_group:int ->
  ?window:int ->
  ?raise_above:float ->
  ?lower_below:float ->
  capacity:int ->
  unit ->
  t
(** Defaults: groups adapt within [1, 10] starting from
    [config.group_size], window 200 demand fetches, thresholds 0.55/0.30.
    [obs] is passed through to the underlying {!Client_cache} unchanged.
    @raise Invalid_argument on an empty or inverted group range. *)

val access : t -> Agg_trace.File_id.t -> bool
val run : t -> Agg_trace.Trace.t -> Metrics.client
val metrics : t -> Metrics.client

val current_group_size : t -> int

val trajectory : t -> (int * int) list
(** [(demand fetches so far, new group size)] at each adaptation, oldest
    first — how the controller moved over the run. *)
