module Cache = Agg_cache.Cache
module Int_table = Agg_util.Int_table
module Tracker = Agg_successor.Tracker
module Sink = Agg_obs.Sink
module Event = Agg_obs.Event

type scheme = Plain of Agg_cache.Cache.kind | Aggregating of Config.t

type t = {
  scheme : scheme;
  cooperative : bool;
  obs : Sink.t;
  client : Cache.t;
  server : Cache.t;
  tracker : Tracker.t option; (* present only for the aggregating scheme *)
  speculative : Int_table.t;
  inserted_at : Int_table.t; (* instrumentation only: request count at insertion *)
  mutable last_observed : int; (* instrumentation only: predecessor file, -1 at start *)
  mutable client_accesses : int;
  mutable server_requests : int;
  mutable server_hits : int;
  mutable store_fetches : int;
  mutable prefetch_issued : int;
  mutable prefetch_used : int;
  mutable prefetch_evicted_unused : int;
}

let on_evict t victim =
  let speculative = Int_table.mem t.speculative victim in
  let age_accesses =
    match Int_table.get t.inserted_at victim with
    | at when at >= 0 -> t.server_requests - at
    | _ -> 0
  in
  Int_table.remove t.inserted_at victim;
  Sink.emit t.obs (Event.Evicted { file = victim; speculative; age_accesses })

let create ?(cooperative = false) ?(obs = Sink.noop) ~filter_kind ~filter_capacity
    ~server_capacity ~scheme () =
  let server_kind, tracker =
    match scheme with
    | Plain kind -> (kind, None)
    | Aggregating config ->
        Config.validate config;
        ( config.cache_kind,
          Some (Tracker.create ~capacity:config.successor_capacity ~policy:config.metadata_policy ())
        )
  in
  let t =
    {
      scheme;
      cooperative;
      obs;
      client = Cache.create filter_kind ~capacity:filter_capacity;
      server = Cache.create server_kind ~capacity:server_capacity;
      tracker;
      speculative = Int_table.create ~capacity:64 ();
      inserted_at = Int_table.create ~capacity:64 ();
      last_observed = -1;
      client_accesses = 0;
      server_requests = 0;
      server_hits = 0;
      store_fetches = 0;
      prefetch_issued = 0;
      prefetch_used = 0;
      prefetch_evicted_unused = 0;
    }
  in
  if Sink.enabled obs then Cache.set_on_evict t.server (on_evict t);
  t

type outcome = Client_hit | Server_hit | Server_miss

(* Shared by both metadata paths: report the adjacency the tracker just
   learned. Only called when the sink is enabled. *)
let note_observation t file =
  if t.last_observed >= 0 then
    Sink.emit t.obs (Event.Successor_update { prev = t.last_observed; next = file });
  t.last_observed <- file

let mark_speculative t file =
  t.store_fetches <- t.store_fetches + 1;
  t.prefetch_issued <- t.prefetch_issued + 1;
  Int_table.set t.speculative file 1;
  if Sink.enabled t.obs then begin
    Int_table.set t.inserted_at file t.server_requests;
    Sink.emit t.obs (Event.Prefetch_issued { file })
  end

let insert_members t config members =
  match config.Config.member_position with
  | Config.Tail ->
      let admitted = Cache.insert_cold_group t.server members in
      List.iter (mark_speculative t) admitted
  | Config.Head ->
      List.iter
        (fun file ->
          if not (Cache.mem t.server file) then begin
            Cache.insert_hot t.server file;
            mark_speculative t file
          end)
        members

let serve t file =
  t.server_requests <- t.server_requests + 1;
  (* Non-cooperative servers learn from what they can see: the misses. *)
  (match (t.tracker, t.cooperative) with
  | Some tracker, false ->
      Tracker.observe tracker file;
      if Sink.enabled t.obs then note_observation t file
  | Some _, true | None, _ -> ());
  if Sink.enabled t.obs then begin
    match Cache.depth t.server file with
    | Some depth -> Sink.emit t.obs (Event.Demand_hit { file; depth })
    | None -> Sink.emit t.obs (Event.Demand_miss { file })
  end;
  if Cache.access t.server file then begin
    t.server_hits <- t.server_hits + 1;
    if Int_table.mem t.speculative file then begin
      t.prefetch_used <- t.prefetch_used + 1;
      Int_table.remove t.speculative file;
      if Sink.enabled t.obs then begin
        let lifetime =
          match Int_table.get t.inserted_at file with
          | at when at >= 0 -> t.server_requests - at
          | _ -> 0
        in
        Sink.emit t.obs (Event.Prefetch_promoted { file; lifetime })
      end
    end;
    Server_hit
  end
  else begin
    if Int_table.mem t.speculative file then begin
      t.prefetch_evicted_unused <- t.prefetch_evicted_unused + 1;
      Int_table.remove t.speculative file
    end;
    t.store_fetches <- t.store_fetches + 1;
    if Sink.enabled t.obs then Int_table.set t.inserted_at file t.server_requests;
    (match (t.scheme, t.tracker) with
    | Aggregating config, Some tracker -> (
        match Group_builder.build ~obs:t.obs tracker ~group_size:config.group_size file with
        | _requested :: members -> insert_members t config members
        | [] -> assert false)
    | Plain _, _ -> ()
    | Aggregating _, None -> assert false);
    Server_miss
  end

let access t file =
  t.client_accesses <- t.client_accesses + 1;
  (* Cooperative clients piggy-back every access to the server's metadata,
     even the ones their own cache absorbs. *)
  (match (t.tracker, t.cooperative) with
  | Some tracker, true ->
      Tracker.observe tracker file;
      if Sink.enabled t.obs then note_observation t file
  | Some _, false | None, _ -> ());
  if Cache.access t.client file then Client_hit else serve t file

let metrics t =
  {
    Metrics.client_accesses = t.client_accesses;
    server_requests = t.server_requests;
    server_hits = t.server_hits;
    store_fetches = t.store_fetches;
    prefetch =
      {
        Metrics.issued = t.prefetch_issued;
        used = t.prefetch_used;
        evicted_unused = t.prefetch_evicted_unused;
      };
  }

let run t trace =
  Agg_trace.Trace.iter (fun (e : Agg_trace.Event.t) -> ignore (access t e.file)) trace;
  metrics t

let run_files t files =
  Array.iter (fun file -> ignore (access t file)) files;
  metrics t
