(** The aggregating *client* cache (paper §3, evaluated in §4.2 / Fig. 3).

    The client interacts with the local file-system interface normally; a
    miss triggers a *group retrieval* from the server instead of a
    single-file demand fetch. The requested file enters the cache at the
    MRU head; the speculative group members are appended at the LRU tail
    so unconfirmed predictions never displace hot data from the top of the
    stack. Relationship metadata is maintained from the full access
    sequence (statistics piggy-backed to the server). With
    [group_size = 1] this degenerates to a plain demand cache of the
    configured kind — LRU by default — which is the paper's baseline. *)

type t

val create :
  ?config:Config.t ->
  ?obs:Agg_obs.Sink.t ->
  ?weight_of:(Agg_trace.File_id.t -> Agg_cache.Policy.weight) ->
  capacity:int ->
  unit ->
  t
(** @raise Invalid_argument on invalid capacity or configuration.

    When [obs] is an enabled sink the client reports every decision to it:
    [Successor_update] for each observed adjacency, [Demand_hit]/[Demand_miss]
    (announced before the cache mutates, so the eviction events a miss
    triggers follow their cause), [Prefetch_issued]/[Prefetch_promoted],
    [Group_built] per miss and [Evicted] per physical eviction. The default
    no-op sink adds one branch per access and allocates nothing. *)

val config : t -> Config.t
val capacity : t -> int

val group_size : t -> int
(** The group size currently in force (initially [config.group_size]). *)

val set_group_size : t -> int -> unit
(** Changes the group size on the fly — group construction is stateless
    beyond the successor lists, so the size can adapt per fetch (used by
    {!Adaptive_client}). @raise Invalid_argument when not positive. *)

val access : t -> Agg_trace.File_id.t -> bool
(** [access t file] simulates one demand access; [true] on a cache hit.
    On a miss, the group for [file] is fetched from the (simulated)
    server. *)

val run : t -> Agg_trace.Trace.t -> Metrics.client
(** [run t trace] feeds every event of [trace] through {!access} and
    returns the accumulated metrics. Can be called repeatedly; metrics
    accumulate across calls. *)

val run_files : t -> Agg_trace.File_id.t array -> Metrics.client
(** [run_files t files] is {!run} over a bare file-id sequence — the
    client only consumes file ids, so sweeps that already hold the id
    array (see [Trace_store.files]) can skip materialising a trace. *)

val metrics : t -> Metrics.client

val weighted_metrics : t -> Metrics.weighted
(** The cache's size/cost counters (see {!Metrics.weighted}); unit-weight
    mirrors of the plain counters when no [weight_of] was given. *)

val tracker : t -> Agg_successor.Tracker.t
val resident : t -> Agg_trace.File_id.t -> bool

val obs : t -> Agg_obs.Sink.t
(** The sink given at {!create} (the no-op sink by default). *)
