module Cache = Agg_cache.Cache
module Int_table = Agg_util.Int_table
module Tracker = Agg_successor.Tracker
module Sink = Agg_obs.Sink
module Event = Agg_obs.Event

type t = {
  config : Config.t;
  obs : Sink.t;
  mutable group_size : int;
  cache : Cache.t;
  tracker : Tracker.t;
  speculative : Int_table.t; (* prefetched residents not yet demanded *)
  inserted_at : Int_table.t; (* instrumentation only: access count at insertion *)
  mutable last_observed : int; (* instrumentation only: predecessor file, -1 at start *)
  mutable accesses : int;
  mutable hits : int;
  mutable demand_fetches : int;
  mutable prefetch_issued : int;
  mutable prefetch_used : int;
  mutable prefetch_evicted_unused : int;
}

(* Fired by the cache on every physical eviction — only installed when the
   sink is enabled, so the uninstrumented path is exactly the old one. *)
let on_evict t victim =
  let speculative = Int_table.mem t.speculative victim in
  let age_accesses =
    match Int_table.get t.inserted_at victim with at when at >= 0 -> t.accesses - at | _ -> 0
  in
  Int_table.remove t.inserted_at victim;
  Sink.emit t.obs (Event.Evicted { file = victim; speculative; age_accesses })

let create ?(config = Config.default) ?(obs = Sink.noop) ?weight_of ~capacity () =
  Config.validate config;
  let t =
    {
      config;
      obs;
      group_size = config.group_size;
      cache = Cache.create ?weight_of config.cache_kind ~capacity;
      tracker =
        Tracker.create ~capacity:config.successor_capacity ~policy:config.metadata_policy ();
      speculative = Int_table.create ~capacity:64 ();
      inserted_at = Int_table.create ~capacity:64 ();
      last_observed = -1;
      accesses = 0;
      hits = 0;
      demand_fetches = 0;
      prefetch_issued = 0;
      prefetch_used = 0;
      prefetch_evicted_unused = 0;
    }
  in
  if Sink.enabled obs then Cache.set_on_evict t.cache (on_evict t);
  t

let config t = t.config
let capacity t = Cache.capacity t.cache
let group_size t = t.group_size

let set_group_size t g =
  if g <= 0 then invalid_arg "Client_cache.set_group_size: group size must be positive";
  t.group_size <- g

let mark_speculative t file =
  t.prefetch_issued <- t.prefetch_issued + 1;
  Int_table.set t.speculative file 1;
  if Sink.enabled t.obs then begin
    Int_table.set t.inserted_at file t.accesses;
    Sink.emit t.obs (Event.Prefetch_issued { file })
  end

let insert_members t members =
  match t.config.member_position with
  | Config.Tail ->
      (* The whole group arrives in one retrieval: appended as a block. *)
      let admitted = Cache.insert_cold_group t.cache members in
      List.iter (mark_speculative t) admitted
  | Config.Head ->
      List.iter
        (fun file ->
          if not (Cache.mem t.cache file) then begin
            Cache.insert_hot t.cache file;
            mark_speculative t file
          end)
        members

let access t file =
  (* Metadata first: the tracker sees the raw request sequence. *)
  Tracker.observe t.tracker file;
  t.accesses <- t.accesses + 1;
  if Sink.enabled t.obs then begin
    if t.last_observed >= 0 then
      Sink.emit t.obs (Event.Successor_update { prev = t.last_observed; next = file });
    t.last_observed <- file;
    (* Hit/miss is announced before the cache mutates so the eviction
       events a miss triggers follow their cause in the stream. *)
    match Cache.depth t.cache file with
    | Some depth -> Sink.emit t.obs (Event.Demand_hit { file; depth })
    | None -> Sink.emit t.obs (Event.Demand_miss { file })
  end;
  if Cache.access t.cache file then begin
    t.hits <- t.hits + 1;
    if Int_table.mem t.speculative file then begin
      (* First demand hit on a prefetched file: the speculation paid off. *)
      t.prefetch_used <- t.prefetch_used + 1;
      Int_table.remove t.speculative file;
      if Sink.enabled t.obs then begin
        let lifetime =
          match Int_table.get t.inserted_at file with at when at >= 0 -> t.accesses - at | _ -> 0
        in
        Sink.emit t.obs (Event.Prefetch_promoted { file; lifetime })
      end
    end;
    true
  end
  else begin
    if Int_table.mem t.speculative file then begin
      (* It was prefetched once but evicted before being used. *)
      t.prefetch_evicted_unused <- t.prefetch_evicted_unused + 1;
      Int_table.remove t.speculative file
    end;
    t.demand_fetches <- t.demand_fetches + 1;
    if Sink.enabled t.obs then Int_table.set t.inserted_at file t.accesses;
    (match Group_builder.build ~obs:t.obs t.tracker ~group_size:t.group_size file with
    | _requested :: members -> insert_members t members
    | [] -> assert false (* build always returns the requested file *));
    false
  end

let metrics t =
  {
    Metrics.accesses = t.accesses;
    hits = t.hits;
    demand_fetches = t.demand_fetches;
    prefetch =
      {
        Metrics.issued = t.prefetch_issued;
        used = t.prefetch_used;
        evicted_unused = t.prefetch_evicted_unused;
      };
  }

let run t trace =
  Agg_trace.Trace.iter (fun (e : Agg_trace.Event.t) -> ignore (access t e.file)) trace;
  metrics t

let run_files t files =
  Array.iter (fun file -> ignore (access t file)) files;
  metrics t

let weighted_metrics t = Cache.weighted_stats t.cache
let tracker t = t.tracker
let resident t file = Cache.mem t.cache file
let obs t = t.obs
