type t = {
  cache : Client_cache.t;
  min_group : int;
  max_group : int;
  window : int;
  raise_above : float;
  lower_below : float;
  mutable window_fetches : int;
  mutable issued_mark : int; (* counters at the start of the window *)
  mutable used_mark : int;
  mutable trajectory : (int * int) list; (* newest first *)
}

let create ?(config = Config.default) ?(obs = Agg_obs.Sink.noop) ?(min_group = 1)
    ?(max_group = 10) ?(window = 200) ?(raise_above = 0.55) ?(lower_below = 0.30) ~capacity () =
  if min_group <= 0 || max_group < min_group then
    invalid_arg "Adaptive_client.create: need 0 < min_group <= max_group";
  if window <= 0 then invalid_arg "Adaptive_client.create: window must be positive";
  let start = max min_group (min max_group config.Config.group_size) in
  let cache = Client_cache.create ~config ~obs ~capacity () in
  Client_cache.set_group_size cache start;
  {
    cache;
    min_group;
    max_group;
    window;
    raise_above;
    lower_below;
    window_fetches = 0;
    issued_mark = 0;
    used_mark = 0;
    trajectory = [];
  }

let current_group_size t = Client_cache.group_size t.cache

let adapt t =
  let m = Client_cache.metrics t.cache in
  let issued = m.Metrics.prefetch.Metrics.issued - t.issued_mark in
  let used = m.Metrics.prefetch.Metrics.used - t.used_mark in
  t.issued_mark <- m.Metrics.prefetch.Metrics.issued;
  t.used_mark <- m.Metrics.prefetch.Metrics.used;
  let g = current_group_size t in
  let utilisation = Agg_util.Stats.ratio used issued in
  let g' =
    (* with no speculation at all (g = 1 issues nothing) probe upward *)
    if issued = 0 then min t.max_group (g + 1)
    else if utilisation >= t.raise_above then min t.max_group (g + 1)
    else if utilisation < t.lower_below then max t.min_group (g - 1)
    else g
  in
  if g' <> g then begin
    Client_cache.set_group_size t.cache g';
    t.trajectory <- (m.Metrics.demand_fetches, g') :: t.trajectory
  end

let access t file =
  let hit = Client_cache.access t.cache file in
  if not hit then begin
    t.window_fetches <- t.window_fetches + 1;
    if t.window_fetches >= t.window then begin
      t.window_fetches <- 0;
      adapt t
    end
  end;
  hit

let metrics t = Client_cache.metrics t.cache

let run t trace =
  Agg_trace.Trace.iter (fun (e : Agg_trace.Event.t) -> ignore (access t e.Agg_trace.Event.file)) trace;
  metrics t

let trajectory t = List.rev t.trajectory
