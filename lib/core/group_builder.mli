(** Best-effort construction of a retrieval group (paper §3, "Retrieving a
    Group of Successors"). For groups of two or three files the group is
    the requested file plus its most likely immediate successors; larger
    groups chain transitive "most-likely" predictions as far as possible,
    falling back to lower-ranked immediate successors when the chain
    stalls. The result may be shorter than requested — the server makes a
    best effort, never a guarantee. *)

val build :
  ?obs:Agg_obs.Sink.t ->
  Agg_successor.Tracker.t ->
  group_size:int ->
  Agg_trace.File_id.t ->
  Agg_trace.File_id.t list
(** [build tracker ~group_size file] is the retrieval group for [file]:
    [file] first, then up to [group_size - 1] distinct predicted files
    (never [file] itself, no duplicates). When [obs] is an enabled sink, a
    [Group_built] event is emitted per call (the default no-op sink costs
    one branch).
    @raise Invalid_argument when [group_size <= 0]. *)
