(** Measurement records shared by the aggregating client and server
    simulations. *)

type prefetch = {
  issued : int;  (** speculative (group-member) insertions performed *)
  used : int;  (** speculative residents later hit by a demand access *)
  evicted_unused : int;  (** speculative residents observed evicted before use *)
}

val prefetch_utilisation : prefetch -> float
(** [used / issued]; [0.] before any prefetch. *)

type client = {
  accesses : int;
  hits : int;
  demand_fetches : int;  (** misses, i.e. requests sent to the remote server *)
  prefetch : prefetch;
}

val client_hit_rate : client -> float
val pp_client : Format.formatter -> client -> unit

type server = {
  client_accesses : int;  (** accesses offered to the client cache *)
  server_requests : int;  (** client misses, i.e. requests reaching the server *)
  server_hits : int;
  store_fetches : int;  (** files fetched from backing store (incl. group members) *)
  prefetch : prefetch;
}

val server_hit_rate : server -> float
(** Server hits over requests that reached the server — the Fig. 4 metric. *)

val pp_server : Format.formatter -> server -> unit

type weighted = Agg_cache.Cache.weighted_stats = {
  bytes_accessed : int;  (** Σ size over demand accesses *)
  bytes_hit : int;  (** Σ size over demand hits *)
  cost_fetched : int;  (** Σ cost over demand fetches *)
  cost_prefetched : int;  (** Σ cost over admitted speculative fetches *)
}
(** The weighted counters of one cache, re-exported so sweep code can
    speak in metrics vocabulary. Kept outside {!client}/{!server} (which
    the oracle compares structurally): at unit weights these mirror the
    unweighted counters and add no information. *)

val byte_weighted_hit_rate : weighted -> float
(** Bytes hit over bytes accessed — the size-aware hit rate; [0.] before
    any access. Equals the plain hit rate at unit weights. *)

val total_retrieval_cost : weighted -> int
(** Everything paid to the next level: demand plus speculative fetch
    cost — the figure of merit for Landlord-style policies. *)

val pp_weighted : Format.formatter -> weighted -> unit

val reconcile_client : Agg_obs.Digest.t -> client -> (unit, string) result
(** [reconcile_client digest c] checks that the per-event counts of a
    run's digest agree exactly with its aggregate metrics — hits, misses
    (= groups built), accesses, and all three prefetch counters — and
    names every mismatching field otherwise. The [aggsim trace] verb and
    the @obs CI gate fail on [Error]. *)

val reconcile_server : Agg_obs.Digest.t -> server -> (unit, string) result
(** Server-side counterpart: server requests/hits, store fetches
    (= misses + issued prefetches) and the prefetch counters. *)
