(** The differential test engine: drives optimized implementations and
    the {!Model_cache} / {!Model_successor} / {!Model_system} reference
    models in lockstep and reports the first divergence.

    Two generators feed it: random operation sequences over the full
    {!Agg_cache.Policy.S} surface ([insert ~pos], [promote], [evict],
    [mem], [clear]) with greedy shrinking to a minimal reproducing op
    list, and calibrated-workload traces from every
    {!Agg_workload.Profile} replayed end-to-end. Cross-cutting paper
    invariants (metrics conservation, Belady optimality, group size 1 ≡
    plain LRU) are checked on the same traces. All generation is driven
    by {!Agg_util.Prng} from an explicit seed, so every failure is
    reproducible from the (seed, ops) pair printed in its detail. *)

type op =
  | Insert of Agg_cache.Policy.insert_position * Agg_cache.Policy.weight * int
  | Promote of int
  | Charge of int * int  (** key, cost — the demand-hit re-credit hook *)
  | Evict
  | Mem of int
  | Clear

val op_to_string : op -> string

val ops_to_string : op list -> string
(** Semicolon-separated, suitable for a one-line counterexample report. *)

val gen_ops : Agg_util.Prng.t -> universe:int -> count:int -> op list
(** [count] unit-weight operations over keys in [\[0, universe)],
    weighted towards insertions so caches actually fill. *)

val gen_weighted_ops :
  Agg_util.Prng.t -> universe:int -> max_size:int -> max_cost:int -> count:int -> op list
(** Like {!gen_ops} but inserts carry sizes in [\[1, max_size\]] and
    costs in [\[1, max_cost\]], and the mix includes [Charge] ops.
    @raise Invalid_argument when [universe], [max_size] or [max_cost] is
    non-positive. *)

type divergence = { step : int  (** 0-based op index *); detail : string }

val diff_ops : Agg_cache.Cache.kind -> capacity:int -> op list -> divergence option
(** Runs the ops through the optimized policy and its model, comparing
    insert victims, evict victims, [mem] answers, sizes, used totals and
    resident sets after every operation — and that the conservation
    invariant [used <= capacity] holds. [None] means lockstep agreement
    throughout. @raise Invalid_argument when [capacity <= 0]. *)

type weighted_policy = Landlord | Gds | Bundle
(** The weighted baselines of [Agg_baselines], paired with their
    list-based reference restatements in {!Model_cache}. *)

val weighted_policy_name : weighted_policy -> string
val all_weighted_policies : weighted_policy list

val diff_weighted_ops : weighted_policy -> capacity:int -> op list -> divergence option
(** {!diff_ops} for a weighted baseline vs its reference model.
    @raise Invalid_argument when [capacity <= 0]. *)

val diff_ops_mutant : capacity:int -> op list -> divergence option
(** Same lockstep run, but the subject is a deliberately broken LRU that
    promotes to the {e cold} end — the engine's own smoke test. A [None]
    result from a non-trivial op list means the engine has lost its
    teeth. *)

val shrink_ops : (op list -> bool) -> op list -> op list
(** [shrink_ops fails ops] greedily removes windows of operations while
    [fails] keeps holding, returning a (locally) minimal failing list.
    [ops] itself must satisfy [fails]. *)

type check = { name : string; cases : int  (** operations / events compared *); pass : bool; detail : string }

val fuzz_policy : seed:int -> ops:int -> Agg_cache.Cache.kind -> check
(** At least [ops] generated unit-weight operations against the policy's
    model, in rounds of fresh caches with varying capacities. On
    divergence the detail carries the capacity and the shrunk op list. *)

val fuzz_policy_weighted : seed:int -> ops:int -> Agg_cache.Cache.kind -> check
(** Like {!fuzz_policy} but with mixed-weight op sequences (sizes up to
    one past the round's capacity, so the oversize bypass and the
    multi-victim path are both exercised). *)

val fuzz_weighted_policy : seed:int -> ops:int -> weighted_policy -> check
(** Mixed-weight fuzz of a weighted baseline against its reference
    model. *)

val fuzz_all : seed:int -> ops:int -> check list
(** [fuzz_policy] and [fuzz_policy_weighted] for every kind in
    {!Agg_cache.Cache.all_kinds}, plus [fuzz_weighted_policy] for every
    weighted baseline. *)

val lru_equivalence_checks : seed:int -> events:int -> check list
(** Per profile and per weighted baseline: at unit size/cost the policy
    must be access-for-access identical to LRU — hit answers, eviction
    victims and the exact recency order are compared over the profile's
    calibrated trace. *)

val mutant_check : seed:int -> ops:int -> check
(** Passes iff the engine {e catches} the seeded LRU mutant; the detail
    shows the shrunk counterexample it found. *)

val successor_checks : seed:int -> events:int -> check list
(** Per profile: every successor-list scheme (recency, frequency, at
    several capacities) and the perfect oracle, driven over the profile's
    trace in lockstep with their models — membership answers, ranked
    orders and top predictions compared at every observation. *)

val trace_checks : seed:int -> events:int -> check list
(** Per profile: every policy replayed through {!Agg_cache.Cache} vs
    {!Model_cache}; the aggregating client (tail and head insertion) vs
    {!Model_system.Client}; the two-level system (plain and cooperative)
    vs {!Model_system.Server}; plus the cross-cutting invariants
    (metrics conservation, no policy beats Belady, group size 1 ≡ plain
    LRU). *)

val all_pass : check list -> bool
