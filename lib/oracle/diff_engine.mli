(** The differential test engine: drives optimized implementations and
    the {!Model_cache} / {!Model_successor} / {!Model_system} reference
    models in lockstep and reports the first divergence.

    Two generators feed it: random operation sequences over the full
    {!Agg_cache.Policy.S} surface ([insert ~pos], [promote], [evict],
    [mem], [clear]) with greedy shrinking to a minimal reproducing op
    list, and calibrated-workload traces from every
    {!Agg_workload.Profile} replayed end-to-end. Cross-cutting paper
    invariants (metrics conservation, Belady optimality, group size 1 ≡
    plain LRU) are checked on the same traces. All generation is driven
    by {!Agg_util.Prng} from an explicit seed, so every failure is
    reproducible from the (seed, ops) pair printed in its detail. *)

type op =
  | Insert of Agg_cache.Policy.insert_position * int
  | Promote of int
  | Evict
  | Mem of int
  | Clear

val op_to_string : op -> string

val ops_to_string : op list -> string
(** Semicolon-separated, suitable for a one-line counterexample report. *)

val gen_ops : Agg_util.Prng.t -> universe:int -> count:int -> op list
(** [count] operations over keys in [\[0, universe)], weighted towards
    insertions so caches actually fill. *)

type divergence = { step : int  (** 0-based op index *); detail : string }

val diff_ops : Agg_cache.Cache.kind -> capacity:int -> op list -> divergence option
(** Runs the ops through the optimized policy and its model, comparing
    insert victims, evict victims, [mem] answers, sizes and resident sets
    after every operation. [None] means lockstep agreement throughout.
    @raise Invalid_argument when [capacity <= 0]. *)

val diff_ops_mutant : capacity:int -> op list -> divergence option
(** Same lockstep run, but the subject is a deliberately broken LRU that
    promotes to the {e cold} end — the engine's own smoke test. A [None]
    result from a non-trivial op list means the engine has lost its
    teeth. *)

val shrink_ops : (op list -> bool) -> op list -> op list
(** [shrink_ops fails ops] greedily removes windows of operations while
    [fails] keeps holding, returning a (locally) minimal failing list.
    [ops] itself must satisfy [fails]. *)

type check = { name : string; cases : int  (** operations / events compared *); pass : bool; detail : string }

val fuzz_policy : seed:int -> ops:int -> Agg_cache.Cache.kind -> check
(** At least [ops] generated operations against the policy's model, in
    rounds of fresh caches with varying capacities. On divergence the
    detail carries the capacity and the shrunk op list. *)

val fuzz_all : seed:int -> ops:int -> check list
(** [fuzz_policy] for every kind in {!Agg_cache.Cache.all_kinds}. *)

val mutant_check : seed:int -> ops:int -> check
(** Passes iff the engine {e catches} the seeded LRU mutant; the detail
    shows the shrunk counterexample it found. *)

val successor_checks : seed:int -> events:int -> check list
(** Per profile: every successor-list scheme (recency, frequency, at
    several capacities) and the perfect oracle, driven over the profile's
    trace in lockstep with their models — membership answers, ranked
    orders and top predictions compared at every observation. *)

val trace_checks : seed:int -> events:int -> check list
(** Per profile: every policy replayed through {!Agg_cache.Cache} vs
    {!Model_cache}; the aggregating client (tail and head insertion) vs
    {!Model_system.Client}; the two-level system (plain and cooperative)
    vs {!Model_system.Server}; plus the cross-cutting invariants
    (metrics conservation, no policy beats Belady, group size 1 ≡ plain
    LRU). *)

val all_pass : check list -> bool
