module Config = Agg_core.Config
module Metrics = Agg_core.Metrics
module Server_cache = Agg_core.Server_cache

(* --- reference successor tracker ---------------------------------------

   The global-context tracker of Agg_successor.Tracker, restated: one
   Model_successor list per file, one "previous file" context. *)

module Tracker = struct
  type t = {
    capacity : int;
    policy : Agg_successor.Successor_list.policy;
    mutable lists : (int * Model_successor.t) list;
    mutable prev : int option;
  }

  let create ~capacity ~policy = { capacity; policy; lists = []; prev = None }

  let list_for t file =
    match List.assoc_opt file t.lists with
    | Some l -> l
    | None ->
        let l = Model_successor.create ~capacity:t.capacity ~policy:t.policy in
        t.lists <- (file, l) :: t.lists;
        l

  let observe t file =
    (match t.prev with
    | Some prev -> Model_successor.observe (list_for t prev) file
    | None -> ());
    t.prev <- Some file

  let successors t file =
    match List.assoc_opt file t.lists with Some l -> Model_successor.ranked l | None -> []
end

(* --- reference group builder --------------------------------------------

   Restates Agg_core.Group_builder: immediate successors for small groups,
   transitive most-likely chaining with fallback for large ones. *)

let take n list =
  let rec loop n acc = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: rest -> loop (n - 1) (x :: acc) rest
  in
  loop n [] list

let build_group tracker ~group_size file =
  if group_size <= 0 then invalid_arg "Model_system.build_group: group_size must be positive";
  let want = group_size - 1 in
  let immediate () =
    take want (List.filter (fun s -> s <> file) (Tracker.successors tracker file))
  in
  let transitive () =
    let seen = ref [ file ] in
    let members = ref [] in
    let count = ref 0 in
    let add f =
      seen := f :: !seen;
      members := f :: !members;
      incr count
    in
    let first_unseen candidates =
      List.find_opt (fun s -> not (List.mem s !seen)) candidates
    in
    let rec extend current =
      if !count < want then
        match first_unseen (Tracker.successors tracker current) with
        | Some next ->
            add next;
            extend next
        | None -> fallback (file :: List.rev !members)
    and fallback chain =
      if !count < want then
        let candidates =
          List.rev chain |> List.filter_map (fun m -> first_unseen (Tracker.successors tracker m))
        in
        match candidates with
        | next :: _ ->
            add next;
            extend next
        | [] -> ()
    in
    extend file;
    List.rev !members
  in
  let members =
    if want = 0 then [] else if group_size <= 3 then immediate () else transitive ()
  in
  file :: members

(* --- reference block insertion ------------------------------------------

   Restates Cache.insert_cold_group: distinct non-resident members only,
   capped at capacity - 1, room made for the whole block before any member
   is appended. Returns the members actually inserted. *)

let insert_cold_group cache members =
  let fresh =
    List.rev
      (List.fold_left
         (fun acc k ->
           if List.mem k acc || Model_cache.mem cache k then acc else k :: acc)
         [] members)
  in
  let admitted = take (Model_cache.capacity cache - 1) fresh in
  let need = Model_cache.size cache + List.length admitted - Model_cache.capacity cache in
  for _ = 1 to need do
    ignore (Model_cache.evict cache)
  done;
  List.iter (fun k -> ignore (Model_cache.insert cache ~pos:Agg_cache.Policy.Cold ~weight:Agg_cache.Policy.unit_weight k)) admitted;
  admitted

(* --- the aggregating client --------------------------------------------- *)

module Client = struct
  type t = {
    config : Config.t;
    cache : Model_cache.t;
    tracker : Tracker.t;
    mutable speculative : int list;
    mutable accesses : int;
    mutable hits : int;
    mutable demand_fetches : int;
    mutable prefetch_issued : int;
    mutable prefetch_used : int;
    mutable prefetch_evicted_unused : int;
  }

  let create ?(config = Config.default) ~capacity () =
    Config.validate config;
    {
      config;
      cache = Model_cache.create config.cache_kind ~capacity;
      tracker =
        Tracker.create ~capacity:config.successor_capacity ~policy:config.metadata_policy;
      speculative = [];
      accesses = 0;
      hits = 0;
      demand_fetches = 0;
      prefetch_issued = 0;
      prefetch_used = 0;
      prefetch_evicted_unused = 0;
    }

  let mark_speculative t file =
    t.prefetch_issued <- t.prefetch_issued + 1;
    if not (List.mem file t.speculative) then t.speculative <- file :: t.speculative

  let forget_speculative t file = t.speculative <- List.filter (fun f -> f <> file) t.speculative

  let insert_members t members =
    match t.config.member_position with
    | Config.Tail ->
        let admitted = insert_cold_group t.cache members in
        List.iter (mark_speculative t) admitted
    | Config.Head ->
        List.iter
          (fun file ->
            if not (Model_cache.mem t.cache file) then begin
              ignore (Model_cache.insert t.cache ~pos:Agg_cache.Policy.Hot ~weight:Agg_cache.Policy.unit_weight file);
              mark_speculative t file
            end)
          members

  let access t file =
    Tracker.observe t.tracker file;
    t.accesses <- t.accesses + 1;
    if Model_cache.mem t.cache file then begin
      Model_cache.promote t.cache file;
      t.hits <- t.hits + 1;
      if List.mem file t.speculative then begin
        t.prefetch_used <- t.prefetch_used + 1;
        forget_speculative t file
      end;
      true
    end
    else begin
      ignore (Model_cache.insert t.cache ~pos:Agg_cache.Policy.Hot ~weight:Agg_cache.Policy.unit_weight file);
      if List.mem file t.speculative then begin
        t.prefetch_evicted_unused <- t.prefetch_evicted_unused + 1;
        forget_speculative t file
      end;
      t.demand_fetches <- t.demand_fetches + 1;
      (match build_group t.tracker ~group_size:t.config.group_size file with
      | _requested :: members -> insert_members t members
      | [] -> assert false);
      false
    end

  let resident t file = Model_cache.mem t.cache file
  let contents t = Model_cache.contents t.cache

  let metrics t =
    {
      Metrics.accesses = t.accesses;
      hits = t.hits;
      demand_fetches = t.demand_fetches;
      prefetch =
        {
          Metrics.issued = t.prefetch_issued;
          used = t.prefetch_used;
          evicted_unused = t.prefetch_evicted_unused;
        };
    }

  let run t trace =
    Agg_trace.Trace.iter (fun (e : Agg_trace.Event.t) -> ignore (access t e.file)) trace;
    metrics t
end

(* --- the two-level system ------------------------------------------------ *)

module Server = struct
  type t = {
    scheme : Server_cache.scheme;
    cooperative : bool;
    client : Model_cache.t;
    server : Model_cache.t;
    tracker : Tracker.t option;
    mutable speculative : int list;
    mutable client_accesses : int;
    mutable server_requests : int;
    mutable server_hits : int;
    mutable store_fetches : int;
    mutable prefetch_issued : int;
    mutable prefetch_used : int;
    mutable prefetch_evicted_unused : int;
  }

  let create ?(cooperative = false) ~filter_kind ~filter_capacity ~server_capacity ~scheme () =
    let server_kind, tracker =
      match scheme with
      | Server_cache.Plain kind -> (kind, None)
      | Server_cache.Aggregating config ->
          Config.validate config;
          ( config.cache_kind,
            Some
              (Tracker.create ~capacity:config.successor_capacity ~policy:config.metadata_policy)
          )
    in
    {
      scheme;
      cooperative;
      client = Model_cache.create filter_kind ~capacity:filter_capacity;
      server = Model_cache.create server_kind ~capacity:server_capacity;
      tracker;
      speculative = [];
      client_accesses = 0;
      server_requests = 0;
      server_hits = 0;
      store_fetches = 0;
      prefetch_issued = 0;
      prefetch_used = 0;
      prefetch_evicted_unused = 0;
    }

  let mark_speculative t file =
    t.store_fetches <- t.store_fetches + 1;
    t.prefetch_issued <- t.prefetch_issued + 1;
    if not (List.mem file t.speculative) then t.speculative <- file :: t.speculative

  let forget_speculative t file = t.speculative <- List.filter (fun f -> f <> file) t.speculative

  let insert_members t (config : Config.t) members =
    match config.member_position with
    | Config.Tail ->
        let admitted = insert_cold_group t.server members in
        List.iter (mark_speculative t) admitted
    | Config.Head ->
        List.iter
          (fun file ->
            if not (Model_cache.mem t.server file) then begin
              ignore (Model_cache.insert t.server ~pos:Agg_cache.Policy.Hot ~weight:Agg_cache.Policy.unit_weight file);
              mark_speculative t file
            end)
          members

  let serve t file =
    t.server_requests <- t.server_requests + 1;
    (match (t.tracker, t.cooperative) with
    | Some tracker, false -> Tracker.observe tracker file
    | Some _, true | None, _ -> ());
    if Model_cache.mem t.server file then begin
      Model_cache.promote t.server file;
      t.server_hits <- t.server_hits + 1;
      if List.mem file t.speculative then begin
        t.prefetch_used <- t.prefetch_used + 1;
        forget_speculative t file
      end;
      Server_cache.Server_hit
    end
    else begin
      ignore (Model_cache.insert t.server ~pos:Agg_cache.Policy.Hot ~weight:Agg_cache.Policy.unit_weight file);
      if List.mem file t.speculative then begin
        t.prefetch_evicted_unused <- t.prefetch_evicted_unused + 1;
        forget_speculative t file
      end;
      t.store_fetches <- t.store_fetches + 1;
      (match (t.scheme, t.tracker) with
      | Server_cache.Aggregating config, Some tracker -> (
          match build_group tracker ~group_size:config.group_size file with
          | _requested :: members -> insert_members t config members
          | [] -> assert false)
      | Server_cache.Plain _, _ -> ()
      | Server_cache.Aggregating _, None -> assert false);
      Server_cache.Server_miss
    end

  let access t file =
    t.client_accesses <- t.client_accesses + 1;
    (match (t.tracker, t.cooperative) with
    | Some tracker, true -> Tracker.observe tracker file
    | Some _, false | None, _ -> ());
    if Model_cache.mem t.client file then begin
      Model_cache.promote t.client file;
      Server_cache.Client_hit
    end
    else begin
      ignore (Model_cache.insert t.client ~pos:Agg_cache.Policy.Hot ~weight:Agg_cache.Policy.unit_weight file);
      serve t file
    end

  let server_contents t = Model_cache.contents t.server

  let metrics t =
    {
      Metrics.client_accesses = t.client_accesses;
      server_requests = t.server_requests;
      server_hits = t.server_hits;
      store_fetches = t.store_fetches;
      prefetch =
        {
          Metrics.issued = t.prefetch_issued;
          used = t.prefetch_used;
          evicted_unused = t.prefetch_evicted_unused;
        };
    }

  let run t trace =
    Agg_trace.Trace.iter (fun (e : Agg_trace.Event.t) -> ignore (access t e.file)) trace;
    metrics t
end
