module Prng = Agg_util.Prng
module Policy = Agg_cache.Policy
module Cache = Agg_cache.Cache
module Config = Agg_core.Config
module Metrics = Agg_core.Metrics
module Server_cache = Agg_core.Server_cache
module Successor_list = Agg_successor.Successor_list
module Profile = Agg_workload.Profile
module Generator = Agg_workload.Generator

type op =
  | Insert of Policy.insert_position * Policy.weight * int
  | Promote of int
  | Charge of int * int
  | Evict
  | Mem of int
  | Clear

let pos_name = function Policy.Hot -> "hot" | Policy.Cold -> "cold"

let op_to_string = function
  | Insert (pos, w, k) when Policy.is_unit w -> Printf.sprintf "insert %s %d" (pos_name pos) k
  | Insert (pos, w, k) ->
      Printf.sprintf "insert %s %d s%dc%d" (pos_name pos) k w.Policy.size w.Policy.cost
  | Promote k -> Printf.sprintf "promote %d" k
  | Charge (k, cost) -> Printf.sprintf "charge %d c%d" k cost
  | Evict -> "evict"
  | Mem k -> Printf.sprintf "mem %d" k
  | Clear -> "clear"

let ops_to_string ops = String.concat "; " (List.map op_to_string ops)

let gen_ops prng ~universe ~count =
  if universe <= 0 then invalid_arg "Diff_engine.gen_ops: universe must be positive";
  List.init count (fun _ ->
      let key () = Prng.int prng universe in
      match Prng.int prng 16 with
      | 0 | 1 | 2 | 3 | 4 -> Insert (Policy.Hot, Policy.unit_weight, key ())
      | 5 | 6 | 7 -> Insert (Policy.Cold, Policy.unit_weight, key ())
      | 8 | 9 | 10 -> Promote (key ())
      | 11 | 12 -> Evict
      | 13 | 14 -> Mem (key ())
      | _ -> Clear)

let gen_weighted_ops prng ~universe ~max_size ~max_cost ~count =
  if universe <= 0 then invalid_arg "Diff_engine.gen_weighted_ops: universe must be positive";
  if max_size <= 0 || max_cost <= 0 then
    invalid_arg "Diff_engine.gen_weighted_ops: max_size and max_cost must be positive";
  List.init count (fun _ ->
      let key () = Prng.int prng universe in
      let weight () =
        { Policy.size = 1 + Prng.int prng max_size; cost = 1 + Prng.int prng max_cost }
      in
      match Prng.int prng 16 with
      | 0 | 1 | 2 | 3 | 4 -> Insert (Policy.Hot, weight (), key ())
      | 5 | 6 -> Insert (Policy.Cold, weight (), key ())
      | 7 | 8 | 9 -> Promote (key ())
      | 10 | 11 -> Charge (key (), 1 + Prng.int prng max_cost)
      | 12 -> Evict
      | 13 | 14 -> Mem (key ())
      | _ -> Clear)

type divergence = { step : int; detail : string }

(* --- lockstep drivers ----------------------------------------------------

   A driver is the Policy.S surface reified as closures, so the same
   runner compares any optimized implementation — or a seeded mutant —
   against the model. *)

type driver = {
  d_insert : Policy.insert_position -> Policy.weight -> int -> int list;
  d_promote : int -> unit;
  d_charge : int -> int -> unit;
  d_evict : unit -> int option;
  d_mem : int -> bool;
  d_size : unit -> int;
  d_used : unit -> int;
  d_contents : unit -> int list;
  d_clear : unit -> unit;
}

let module_of_kind : Cache.kind -> (module Policy.S) = function
  | Cache.Lru -> (module Agg_cache.Lru)
  | Cache.Lfu -> (module Agg_cache.Lfu)
  | Cache.Fifo -> (module Agg_cache.Fifo)
  | Cache.Mru -> (module Agg_cache.Mru)
  | Cache.Clock -> (module Agg_cache.Clock)
  | Cache.Random -> (module Agg_cache.Random_policy)
  | Cache.Mq -> (module Agg_cache.Mq)
  | Cache.Slru -> (module Agg_cache.Slru)
  | Cache.Twoq -> (module Agg_cache.Twoq)
  | Cache.Arc -> (module Agg_cache.Arc)

(* Any Policy.S implementation reified as a driver — optimized policies,
   weighted baselines and the list-based reference modules all qualify. *)
let driver_of (type a) (module P : Policy.S with type t = a) (state : a) =
  {
    d_insert = (fun pos w k -> P.insert state ~pos ~weight:w k);
    d_promote = (fun k -> P.promote state k);
    d_charge = (fun k cost -> P.charge state k ~cost);
    d_evict = (fun () -> P.evict state);
    d_mem = (fun k -> P.mem state k);
    d_size = (fun () -> P.size state);
    d_used = (fun () -> P.used state);
    d_contents = (fun () -> P.contents state);
    d_clear = (fun () -> P.clear state);
  }

let policy_driver kind ~capacity =
  let (module P : Policy.S) = module_of_kind kind in
  driver_of (module P) (P.create ~capacity)

let model_driver model =
  {
    d_insert = (fun pos w k -> Model_cache.insert model ~pos ~weight:w k);
    d_promote = (fun k -> Model_cache.promote model k);
    d_charge = (fun k cost -> Model_cache.charge model k ~cost);
    d_evict = (fun () -> Model_cache.evict model);
    d_mem = (fun k -> Model_cache.mem model k);
    d_size = (fun () -> Model_cache.size model);
    d_used = (fun () -> Model_cache.used model);
    d_contents = (fun () -> Model_cache.contents model);
    d_clear = (fun () -> Model_cache.clear model);
  }

type weighted_policy = Landlord | Gds | Bundle

let weighted_policy_name = function Landlord -> "landlord" | Gds -> "gds" | Bundle -> "bundle"
let all_weighted_policies = [ Landlord; Gds; Bundle ]

let weighted_driver wp ~capacity =
  match wp with
  | Landlord ->
      driver_of (module Agg_baselines.Landlord) (Agg_baselines.Landlord.create ~capacity)
  | Gds -> driver_of (module Agg_baselines.Greedy_dual) (Agg_baselines.Greedy_dual.create ~capacity)
  | Bundle -> driver_of (module Agg_baselines.Bundle) (Agg_baselines.Bundle.create ~capacity)

let weighted_model_driver wp ~capacity =
  match wp with
  | Landlord -> driver_of (module Model_cache.Landlord) (Model_cache.Landlord.create ~capacity)
  | Gds -> driver_of (module Model_cache.Gds) (Model_cache.Gds.create ~capacity)
  | Bundle -> driver_of (module Model_cache.Bundle) (Model_cache.Bundle.create ~capacity)

(* The seeded mutant: LRU whose promote sends a resident key to the *cold*
   end (insert of a resident key repositions without evicting, so this is
   a pure ordering bug — invisible to mem/size/contents, fatal only to
   eviction order, which is exactly what the lockstep victims expose). *)
let mutant_lru_driver ~capacity =
  let base = policy_driver Cache.Lru ~capacity in
  {
    base with
    d_promote = (fun k -> if base.d_mem k then ignore (base.d_insert Policy.Cold Policy.unit_weight k));
  }

let str_opt = function None -> "None" | Some k -> Printf.sprintf "Some %d" k
let str_list l = Printf.sprintf "[%s]" (String.concat " " (List.map string_of_int l))

let run_pair ~capacity subject reference ops =
  let sorted l = List.sort compare l in
  let check_state step op =
    let ss = subject.d_size () and ms = reference.d_size () in
    let su = subject.d_used () and mu = reference.d_used () in
    if ss <> ms then
      Some
        { step; detail = Printf.sprintf "after %s: size %d vs model %d" (op_to_string op) ss ms }
    else if su <> mu then
      Some
        { step; detail = Printf.sprintf "after %s: used %d vs model %d" (op_to_string op) su mu }
    else if su > capacity then
      (* the conservation invariant: total resident size never exceeds
         capacity, no matter what mix of weights was inserted *)
      Some
        {
          step;
          detail = Printf.sprintf "after %s: used %d exceeds capacity %d" (op_to_string op) su capacity;
        }
    else
      let sc = sorted (subject.d_contents ()) and mc = sorted (reference.d_contents ()) in
      if sc <> mc then
        Some
          {
            step;
            detail =
              Printf.sprintf "after %s: contents %s vs model %s" (op_to_string op) (str_list sc)
                (str_list mc);
          }
      else None
  in
  let apply step op =
    let mismatch what a b =
      Some { step; detail = Printf.sprintf "%s: %s: %s vs model %s" (op_to_string op) what a b }
    in
    match op with
    | Insert (pos, w, k) ->
        let vs = subject.d_insert pos w k and vm = reference.d_insert pos w k in
        if vs <> vm then mismatch "victims" (str_list vs) (str_list vm) else check_state step op
    | Promote k ->
        subject.d_promote k;
        reference.d_promote k;
        check_state step op
    | Charge (k, cost) ->
        subject.d_charge k cost;
        reference.d_charge k cost;
        check_state step op
    | Evict ->
        let vs = subject.d_evict () and vm = reference.d_evict () in
        if vs <> vm then mismatch "victim" (str_opt vs) (str_opt vm) else check_state step op
    | Mem k ->
        let rs = subject.d_mem k and rm = reference.d_mem k in
        if rs <> rm then mismatch "answer" (string_of_bool rs) (string_of_bool rm)
        else check_state step op
    | Clear ->
        subject.d_clear ();
        reference.d_clear ();
        check_state step op
  in
  let rec loop step = function
    | [] -> None
    | op :: rest -> ( match apply step op with Some d -> Some d | None -> loop (step + 1) rest)
  in
  loop 0 ops

let diff_ops kind ~capacity ops =
  if capacity <= 0 then invalid_arg "Diff_engine.diff_ops: capacity must be positive";
  run_pair ~capacity (policy_driver kind ~capacity)
    (model_driver (Model_cache.create kind ~capacity))
    ops

let diff_weighted_ops wp ~capacity ops =
  if capacity <= 0 then invalid_arg "Diff_engine.diff_weighted_ops: capacity must be positive";
  run_pair ~capacity (weighted_driver wp ~capacity) (weighted_model_driver wp ~capacity) ops

let diff_ops_mutant ~capacity ops =
  if capacity <= 0 then invalid_arg "Diff_engine.diff_ops_mutant: capacity must be positive";
  run_pair ~capacity (mutant_lru_driver ~capacity)
    (model_driver (Model_cache.create Cache.Lru ~capacity))
    ops

(* --- shrinking: greedy window removal (ddmin-lite) ----------------------- *)

let shrink_ops fails ops =
  let remove_window l lo len = List.filteri (fun i _ -> i < lo || i >= lo + len) l in
  let current = ref ops in
  let chunk = ref (max 1 (List.length ops / 2)) in
  while !chunk >= 1 do
    let improved = ref true in
    while !improved do
      improved := false;
      let n = List.length !current in
      let lo = ref 0 in
      while !lo < n && not !improved do
        let cand = remove_window !current !lo !chunk in
        if List.length cand < n && fails cand then begin
          current := cand;
          improved := true
        end
        else lo := !lo + !chunk
      done
    done;
    chunk := !chunk / 2
  done;
  !current

(* --- checks -------------------------------------------------------------- *)

type check = { name : string; cases : int; pass : bool; detail : string }

let all_pass checks = List.for_all (fun c -> c.pass) checks

let ok name cases = { name; cases; pass = true; detail = "" }
let fail name cases detail = { name; cases; pass = false; detail }

let shrunk_report ~capacity fails ops (d : divergence) =
  let minimal = shrink_ops fails ops in
  Printf.sprintf "capacity=%d step=%d %s; shrunk repro (%d ops): %s" capacity d.step d.detail
    (List.length minimal) (ops_to_string minimal)

(* Unit rounds draw classic unit-weight ops; weighted rounds mix sizes up
   to one past the capacity (so the oversize bypass is exercised) with
   costs in [1, 9] and charge ops. *)
let round_gen ~weighted prng ~universe ~capacity ~count =
  if weighted then gen_weighted_ops prng ~universe ~max_size:(capacity + 1) ~max_cost:9 ~count
  else gen_ops prng ~universe ~count

let fuzz_round ~label ~weighted ~run prng =
  let capacity = 1 + Prng.int prng 24 in
  let universe = (capacity * 3) + 4 in
  let count = 500 in
  let ops = round_gen ~weighted prng ~universe ~capacity ~count in
  let fails candidate = Option.is_some (run ~capacity candidate) in
  match run ~capacity ops with
  | None -> Ok count
  | Some d -> Error (Printf.sprintf "%s: %s" label (shrunk_report ~capacity fails ops d))

let fuzz_driver ~name ~label ~weighted ~run ~seed ~ops =
  let prng = Prng.create ~seed () in
  let generated = ref 0 in
  let failure = ref None in
  while !failure = None && !generated < ops do
    match fuzz_round ~label ~weighted ~run prng with
    | Ok n -> generated := !generated + n
    | Error detail -> failure := Some detail
  done;
  match !failure with
  | None -> ok name !generated
  | Some detail -> fail name !generated (Printf.sprintf "seed=%d %s" seed detail)

let fuzz_policy ~seed ~ops kind =
  let label = Cache.kind_name kind in
  fuzz_driver ~name:("ops." ^ label) ~label ~weighted:false
    ~run:(fun ~capacity candidate -> diff_ops kind ~capacity candidate)
    ~seed ~ops

(* The same ten policies under mixed weights: the Weighted_of_unit layer
   vs the model's restatement of it. *)
let fuzz_policy_weighted ~seed ~ops kind =
  let label = Cache.kind_name kind in
  fuzz_driver ~name:("wops." ^ label) ~label ~weighted:true
    ~run:(fun ~capacity candidate -> diff_ops kind ~capacity candidate)
    ~seed ~ops

let fuzz_weighted_policy ~seed ~ops wp =
  let label = weighted_policy_name wp in
  fuzz_driver ~name:("wops." ^ label) ~label ~weighted:true
    ~run:(fun ~capacity candidate -> diff_weighted_ops wp ~capacity candidate)
    ~seed ~ops

let fuzz_all ~seed ~ops =
  List.map (fuzz_policy ~seed ~ops) Cache.all_kinds
  @ List.map (fuzz_policy_weighted ~seed ~ops) Cache.all_kinds
  @ List.map (fuzz_weighted_policy ~seed ~ops) all_weighted_policies

let mutant_check ~seed ~ops =
  let name = "mutant.lru-cold-promote" in
  let c =
    fuzz_driver ~name ~label:"mutant" ~weighted:false
      ~run:(fun ~capacity candidate -> diff_ops_mutant ~capacity candidate)
      ~seed ~ops
  in
  (* The mutant must be *caught*: a clean run means the engine is blind. *)
  if c.pass then
    fail name c.cases "seeded LRU mutant (promote-to-cold-end) survived the fuzz undetected"
  else { c with pass = true; detail = "caught: " ^ c.detail }

(* --- unit-weight LRU equivalence ------------------------------------------

   Landlord, GreedyDual-Size and the bundle policy all reduce to LRU at
   unit size/cost (credits stay in {0,1}, priorities rise with L, ties
   break towards the least recently used). Checked access-for-access —
   hit answers, victims and the exact recency order — over every
   calibrated profile trace. *)
let lru_equivalence ~capacity files wp =
  let subject = weighted_driver wp ~capacity in
  let lru = policy_driver Cache.Lru ~capacity in
  let divergence = ref None in
  Array.iteri
    (fun i file ->
      if !divergence = None then begin
        let hs = subject.d_mem file and hl = lru.d_mem file in
        if hs <> hl then
          divergence :=
            Some (Printf.sprintf "event %d (file %d): resident %b vs lru %b" i file hs hl)
        else if hs then begin
          subject.d_promote file;
          subject.d_charge file 1;
          lru.d_promote file;
          lru.d_charge file 1
        end
        else begin
          let vs = subject.d_insert Policy.Hot Policy.unit_weight file in
          let vl = lru.d_insert Policy.Hot Policy.unit_weight file in
          if vs <> vl then
            divergence :=
              Some
                (Printf.sprintf "event %d (file %d): victims %s vs lru %s" i file (str_list vs)
                   (str_list vl))
        end;
        if
          !divergence = None
          && (i mod 7 = 0 || i = Array.length files - 1)
          && subject.d_contents () <> lru.d_contents ()
        then divergence := Some (Printf.sprintf "event %d: recency order differs from LRU" i)
      end)
    files;
  (Array.length files, !divergence)

let lru_equivalence_checks ~seed ~events =
  List.concat_map
    (fun (profile : Profile.t) ->
      let files = Generator.generate_files ~seed ~events profile in
      List.map
        (fun wp ->
          let name =
            Printf.sprintf "unit-lru.%s.%s" (weighted_policy_name wp) profile.Profile.name
          in
          match lru_equivalence ~capacity:128 files wp with
          | cases, None -> ok name cases
          | cases, Some detail -> fail name cases (Printf.sprintf "seed=%d %s" seed detail))
        all_weighted_policies)
    Profile.all

(* --- successor-scheme differentials -------------------------------------- *)

let int_list_to_string l = String.concat " " (List.map string_of_int l)

(* One Successor_list vs one Model_successor per file, fed the trace's
   immediate-successor pairs; membership, ranked order and top prediction
   compared at every observation. *)
let successor_diff ~policy ~capacity files =
  let real_lists : (int, Successor_list.t) Hashtbl.t = Hashtbl.create 256 in
  let model_lists : (int, Model_successor.t) Hashtbl.t = Hashtbl.create 256 in
  let real_for file =
    match Hashtbl.find_opt real_lists file with
    | Some l -> l
    | None ->
        let l = Successor_list.create ~capacity ~policy in
        Hashtbl.replace real_lists file l;
        l
  in
  let model_for file =
    match Hashtbl.find_opt model_lists file with
    | Some l -> l
    | None ->
        let l = Model_successor.create ~capacity ~policy in
        Hashtbl.replace model_lists file l;
        l
  in
  let divergence = ref None in
  let cases = ref 0 in
  let prev = ref None in
  Array.iteri
    (fun i file ->
      (match (!divergence, !prev) with
      | None, Some p ->
          let real = real_for p and model = model_for p in
          if Successor_list.mem real file <> Model_successor.mem model file then
            divergence :=
              Some
                (Printf.sprintf "event %d: mem %d of list %d: %b vs model %b" i file p
                   (Successor_list.mem real file)
                   (Model_successor.mem model file))
          else begin
            Successor_list.observe real file;
            Model_successor.observe model file;
            incr cases;
            let rr = Successor_list.ranked real and mr = Model_successor.ranked model in
            if rr <> mr then
              divergence :=
                Some
                  (Printf.sprintf "event %d: ranked of list %d: [%s] vs model [%s]" i p
                     (int_list_to_string rr) (int_list_to_string mr))
            else if Successor_list.top real <> Model_successor.top model then
              divergence :=
                Some
                  (Printf.sprintf "event %d: top of list %d: %s vs model %s" i p
                     (str_opt (Successor_list.top real))
                     (str_opt (Model_successor.top model)))
            else if Successor_list.size real <> Model_successor.size model then
              divergence :=
                Some
                  (Printf.sprintf "event %d: size of list %d: %d vs model %d" i p
                     (Successor_list.size real) (Model_successor.size model))
          end
      | _ -> ());
      prev := Some file)
    files;
  (!cases, !divergence)

let oracle_diff files =
  let real = Agg_successor.Oracle.create () in
  let model = Model_successor.Oracle.create () in
  let divergence = ref None in
  let cases = ref 0 in
  let prev = ref None in
  Array.iteri
    (fun i file ->
      (match (!divergence, !prev) with
      | None, Some p ->
          if
            Agg_successor.Oracle.mem real ~file:p ~successor:file
            <> Model_successor.Oracle.mem model ~file:p ~successor:file
          then
            divergence :=
              Some
                (Printf.sprintf "event %d: oracle mem (%d -> %d): %b vs model %b" i p file
                   (Agg_successor.Oracle.mem real ~file:p ~successor:file)
                   (Model_successor.Oracle.mem model ~file:p ~successor:file))
          else begin
            Agg_successor.Oracle.observe real ~file:p ~successor:file;
            Model_successor.Oracle.observe model ~file:p ~successor:file;
            incr cases
          end
      | _ -> ());
      prev := Some file)
    files;
  (!cases, !divergence)

let successor_checks ~seed ~events =
  List.concat_map
    (fun (profile : Profile.t) ->
      let files = Generator.generate_files ~seed ~events profile in
      let scheme_checks =
        List.concat_map
          (fun (policy, pname) ->
            List.map
              (fun capacity ->
                let name =
                  Printf.sprintf "succ.%s.%s.c%d" profile.Profile.name pname capacity
                in
                match successor_diff ~policy ~capacity files with
                | cases, None -> ok name cases
                | cases, Some detail -> fail name cases (Printf.sprintf "seed=%d %s" seed detail))
              [ 1; 4; 8 ])
          [ (Successor_list.Recency, "recency"); (Successor_list.Frequency, "frequency") ]
      in
      let oracle =
        let name = Printf.sprintf "succ.%s.oracle" profile.Profile.name in
        match oracle_diff files with
        | cases, None -> ok name cases
        | cases, Some detail -> fail name cases (Printf.sprintf "seed=%d %s" seed detail)
      in
      scheme_checks @ [ oracle ])
    Profile.all

(* --- calibrated-trace differentials -------------------------------------- *)

(* Replays a profile trace through the stats-keeping Cache and the model:
   hit flags and sizes every step, resident sets periodically and at the
   end, stats at the end. *)
let replay_policy kind ~capacity files =
  let cache = Cache.create kind ~capacity in
  let model = Model_cache.create kind ~capacity in
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
  let divergence = ref None in
  let sorted l = List.sort compare l in
  Array.iteri
    (fun i file ->
      if !divergence = None then begin
        let real_hit = Cache.access cache file in
        let model_hit = Model_cache.mem model file in
        if model_hit then begin
          Model_cache.promote model file;
          incr hits
        end
        else begin
          incr misses;
          let victims = Model_cache.insert model ~pos:Policy.Hot ~weight:Policy.unit_weight file in
          evictions := !evictions + List.length victims
        end;
        if real_hit <> model_hit then
          divergence :=
            Some (Printf.sprintf "event %d (file %d): hit %b vs model %b" i file real_hit model_hit)
        else if Cache.size cache <> Model_cache.size model then
          divergence :=
            Some
              (Printf.sprintf "event %d: size %d vs model %d" i (Cache.size cache)
                 (Model_cache.size model))
        else if
          (i mod 61 = 0 || i = Array.length files - 1)
          && sorted (Cache.contents cache) <> sorted (Model_cache.contents model)
        then divergence := Some (Printf.sprintf "event %d: resident sets differ" i)
      end)
    files;
  (match !divergence with
  | None ->
      let s = Cache.stats cache in
      if
        s.Cache.accesses <> Array.length files
        || s.Cache.hits <> !hits || s.Cache.misses <> !misses
        || s.Cache.evictions <> !evictions
      then
        divergence :=
          Some
            (Printf.sprintf
               "final stats: accesses=%d hits=%d misses=%d evictions=%d vs model hits=%d \
                misses=%d evictions=%d"
               s.Cache.accesses s.Cache.hits s.Cache.misses s.Cache.evictions !hits !misses
               !evictions)
  | Some _ -> ());
  (Array.length files, !divergence)

let replay_client ~config ~capacity files =
  let real = Agg_core.Client_cache.create ~config ~capacity () in
  let model = Model_system.Client.create ~config ~capacity () in
  let divergence = ref None in
  Array.iteri
    (fun i file ->
      if !divergence = None then begin
        let rh = Agg_core.Client_cache.access real file in
        let mh = Model_system.Client.access model file in
        if rh <> mh then
          divergence :=
            Some (Printf.sprintf "event %d (file %d): hit %b vs model %b" i file rh mh)
        else if
          i mod 61 = 0
          && List.exists
               (fun f -> not (Agg_core.Client_cache.resident real f))
               (Model_system.Client.contents model)
        then
          divergence :=
            Some (Printf.sprintf "event %d: model resident set not resident in client" i)
      end)
    files;
  (match !divergence with
  | None ->
      let rm = Agg_core.Client_cache.metrics real in
      let mm = Model_system.Client.metrics model in
      if rm <> mm then
        divergence :=
          Some
            (Format.asprintf "final metrics: %a vs model %a" Metrics.pp_client rm
               Metrics.pp_client mm)
  | Some _ -> ());
  (Array.length files, !divergence)

let outcome_name = function
  | Server_cache.Client_hit -> "client-hit"
  | Server_cache.Server_hit -> "server-hit"
  | Server_cache.Server_miss -> "server-miss"

let replay_server ~cooperative ~scheme ~filter_capacity ~server_capacity files =
  let real =
    Server_cache.create ~cooperative ~filter_kind:Cache.Lru ~filter_capacity ~server_capacity
      ~scheme ()
  in
  let model =
    Model_system.Server.create ~cooperative ~filter_kind:Cache.Lru ~filter_capacity
      ~server_capacity ~scheme ()
  in
  let divergence = ref None in
  Array.iteri
    (fun i file ->
      if !divergence = None then begin
        let ro = Server_cache.access real file in
        let mo = Model_system.Server.access model file in
        if ro <> mo then
          divergence :=
            Some
              (Printf.sprintf "event %d (file %d): outcome %s vs model %s" i file
                 (outcome_name ro) (outcome_name mo))
      end)
    files;
  (match !divergence with
  | None ->
      let rm = Server_cache.metrics real in
      let mm = Model_system.Server.metrics model in
      if rm <> mm then
        divergence :=
          Some
            (Format.asprintf "final metrics: %a vs model %a" Metrics.pp_server rm
               Metrics.pp_server mm)
  | Some _ -> ());
  (Array.length files, !divergence)

(* Cross-cutting paper invariants, checked on the real implementations. *)
let invariant_conservation ~config ~capacity files =
  let client = Agg_core.Client_cache.create ~config ~capacity () in
  Array.iter (fun file -> ignore (Agg_core.Client_cache.access client file)) files;
  let m = Agg_core.Client_cache.metrics client in
  let client_ok = m.Metrics.hits + m.Metrics.demand_fetches = m.Metrics.accesses in
  let server =
    Server_cache.create ~filter_kind:Cache.Lru ~filter_capacity:(max 1 (capacity / 2))
      ~server_capacity:(capacity * 2) ~scheme:(Server_cache.Aggregating config) ()
  in
  Array.iter (fun file -> ignore (Server_cache.access server file)) files;
  let s = Server_cache.metrics server in
  (* store fetches = server misses + speculative fetches, so demand misses
     are exactly [store_fetches - prefetch.issued]. *)
  let server_ok =
    s.Metrics.server_hits + (s.Metrics.store_fetches - s.Metrics.prefetch.Metrics.issued)
    = s.Metrics.server_requests
  in
  if not client_ok then
    Some
      (Printf.sprintf "client: hits %d + demand %d <> accesses %d" m.Metrics.hits
         m.Metrics.demand_fetches m.Metrics.accesses)
  else if not server_ok then
    Some
      (Printf.sprintf "server: hits %d + (store %d - issued %d) <> requests %d"
         s.Metrics.server_hits s.Metrics.store_fetches s.Metrics.prefetch.Metrics.issued
         s.Metrics.server_requests)
  else None

let invariant_belady ~capacity files =
  let belady = Agg_cache.Belady.simulate ~capacity files in
  let offender =
    List.find_map
      (fun kind ->
        let cache = Cache.create kind ~capacity in
        Array.iter (fun file -> ignore (Cache.access cache file)) files;
        let s = Cache.stats cache in
        if s.Cache.hits > belady.Agg_cache.Belady.hits then
          Some (kind, s.Cache.hits)
        else None)
      Cache.all_kinds
  in
  match offender with
  | Some (kind, hits) ->
      Some
        (Printf.sprintf "%s scored %d hits, above Belady's optimal %d" (Cache.kind_name kind)
           hits belady.Agg_cache.Belady.hits)
  | None -> None

let invariant_group1_lru ~capacity files =
  let config = Config.with_group_size 1 Config.default in
  let client = Agg_core.Client_cache.create ~config ~capacity () in
  let plain = Cache.create Cache.Lru ~capacity in
  let divergence = ref None in
  Array.iteri
    (fun i file ->
      if !divergence = None then begin
        let ch = Agg_core.Client_cache.access client file in
        let ph = Cache.access plain file in
        if ch <> ph then
          divergence :=
            Some
              (Printf.sprintf "event %d (file %d): aggregating g=1 hit %b, plain LRU hit %b" i
                 file ch ph)
      end)
    files;
  (match !divergence with
  | None ->
      let m = Agg_core.Client_cache.metrics client in
      let s = Cache.stats plain in
      if m.Metrics.hits <> s.Cache.hits || m.Metrics.demand_fetches <> s.Cache.misses then
        divergence :=
          Some
            (Printf.sprintf "metrics: g=1 hits=%d demand=%d, plain LRU hits=%d misses=%d"
               m.Metrics.hits m.Metrics.demand_fetches s.Cache.hits s.Cache.misses)
  | Some _ -> ());
  !divergence

let trace_checks ~seed ~events =
  let capacity = 128 in
  let check name (cases, divergence) =
    match divergence with
    | None -> ok name cases
    | Some detail -> fail name cases (Printf.sprintf "seed=%d %s" seed detail)
  in
  let check0 name cases = function
    | None -> ok name cases
    | Some detail -> fail name cases (Printf.sprintf "seed=%d %s" seed detail)
  in
  List.concat_map
    (fun (profile : Profile.t) ->
      let p = profile.Profile.name in
      let files = Generator.generate_files ~seed ~events profile in
      let replays =
        List.map
          (fun kind ->
            check
              (Printf.sprintf "replay.%s.%s" p (Cache.kind_name kind))
              (replay_policy kind ~capacity files))
          Cache.all_kinds
      in
      let clients =
        [
          check
            (Printf.sprintf "client.%s" p)
            (replay_client ~config:Config.default ~capacity:200 files);
          check
            (Printf.sprintf "client.head.%s" p)
            (replay_client
               ~config:{ Config.default with Config.member_position = Config.Head }
               ~capacity:200 files);
        ]
      in
      let servers =
        [
          check
            (Printf.sprintf "server.%s" p)
            (replay_server ~cooperative:false ~scheme:(Server_cache.Aggregating Config.default)
               ~filter_capacity:100 ~server_capacity:300 files);
          check
            (Printf.sprintf "server.coop.%s" p)
            (replay_server ~cooperative:true ~scheme:(Server_cache.Aggregating Config.default)
               ~filter_capacity:100 ~server_capacity:300 files);
          check
            (Printf.sprintf "server.plain.%s" p)
            (replay_server ~cooperative:false ~scheme:(Server_cache.Plain Cache.Lru)
               ~filter_capacity:100 ~server_capacity:300 files);
        ]
      in
      let invariants =
        [
          check0
            (Printf.sprintf "inv.conservation.%s" p)
            (Array.length files)
            (invariant_conservation ~config:Config.default ~capacity:200 files);
          check0
            (Printf.sprintf "inv.belady.%s" p)
            (Array.length files)
            (invariant_belady ~capacity files);
          check0
            (Printf.sprintf "inv.group1-lru.%s" p)
            (Array.length files)
            (invariant_group1_lru ~capacity files);
        ]
      in
      replays @ clients @ servers @ invariants)
    Profile.all
