module Successor_list = Agg_successor.Successor_list

(* [Recency] is the list itself, most recent first. [Frequency] keeps full
   (count, tick) bookkeeping for every successor ever seen and a separate
   member list of the current top-k; a newcomer enters only by beating the
   weakest member on (count, tick) — restating the optimized cache's
   idealised frequency policy. Ticks are unique, so every comparison is a
   total order and the model is deterministic. *)

type freq_entry = { mutable count : int; mutable tick : int }

type t = {
  capacity : int;
  policy : Successor_list.policy;
  mutable recency : int list; (* most recent first *)
  mutable counts : (int * freq_entry) list; (* every successor ever observed *)
  mutable members : int list; (* the current top-k, unordered *)
  mutable clock : int;
}

let create ~capacity ~policy =
  if capacity <= 0 then invalid_arg "Model_successor.create: capacity must be positive";
  { capacity; policy; recency = []; counts = []; members = []; clock = 0 }

let capacity t = t.capacity

let size t =
  match t.policy with
  | Successor_list.Recency -> List.length t.recency
  | Successor_list.Frequency -> List.length t.members

let mem t succ =
  match t.policy with
  | Successor_list.Recency -> List.mem succ t.recency
  | Successor_list.Frequency -> List.mem succ t.members

let observe_recency t succ =
  if List.mem succ t.recency then t.recency <- succ :: List.filter (fun s -> s <> succ) t.recency
  else begin
    if List.length t.recency >= t.capacity then
      t.recency <- (match List.rev t.recency with _ :: rest -> List.rev rest | [] -> []);
    t.recency <- succ :: t.recency
  end

let entry_of t succ = List.assoc_opt succ t.counts

(* The member a newcomer must beat: smallest (count, tick). *)
let weakest_member t =
  List.fold_left
    (fun acc key ->
      let e = List.assoc key t.counts in
      match acc with
      | None -> Some (key, e)
      | Some (_, best) ->
          if e.count < best.count || (e.count = best.count && e.tick < best.tick) then Some (key, e)
          else acc)
    None t.members

let observe_frequency t succ =
  t.clock <- t.clock + 1;
  let entry =
    match entry_of t succ with
    | Some e ->
        e.count <- e.count + 1;
        e.tick <- t.clock;
        e
    | None ->
        let e = { count = 1; tick = t.clock } in
        t.counts <- (succ, e) :: t.counts;
        e
  in
  if not (List.mem succ t.members) then
    if List.length t.members < t.capacity then t.members <- succ :: t.members
    else
      match weakest_member t with
      | Some (victim, weakest)
        when entry.count > weakest.count
             || (entry.count = weakest.count && entry.tick > weakest.tick) ->
          t.members <- succ :: List.filter (fun s -> s <> victim) t.members
      | Some _ | None -> ()

let observe t succ =
  match t.policy with
  | Successor_list.Recency -> observe_recency t succ
  | Successor_list.Frequency -> observe_frequency t succ

let ranked t =
  match t.policy with
  | Successor_list.Recency -> t.recency
  | Successor_list.Frequency ->
      let cmp a b =
        let ea = List.assoc a t.counts and eb = List.assoc b t.counts in
        match compare eb.count ea.count with 0 -> compare eb.tick ea.tick | c -> c
      in
      List.sort cmp t.members

let top t = match ranked t with [] -> None | s :: _ -> Some s

module Oracle = struct
  type t = { mutable pairs : (int * int) list }

  let create () = { pairs = [] }

  let mem t ~file ~successor = List.mem (file, successor) t.pairs

  let observe t ~file ~successor =
    if not (mem t ~file ~successor) then t.pairs <- (file, successor) :: t.pairs
end
