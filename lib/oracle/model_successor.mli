(** Executable reference models of the Fig. 5 per-file successor-list
    replacement schemes: {!Agg_successor.Successor_list} under [Recency]
    and [Frequency], plus the unbounded perfect oracle of
    {!Agg_successor.Oracle}. Pure lists, linear scans, no shared
    structure with the optimized implementations. *)

type t

val create : capacity:int -> policy:Agg_successor.Successor_list.policy -> t
(** @raise Invalid_argument when [capacity <= 0]. *)

val capacity : t -> int
val size : t -> int

val observe : t -> int -> unit
(** Record that the given file just followed this list's file. *)

val mem : t -> int -> bool

val ranked : t -> int list
(** Successors most-likely first — same order contract as the optimized
    list: recency order under [Recency]; by descending count, most recent
    tick first on ties, under [Frequency]. *)

val top : t -> int option

(** Reference model of the perfect Fig. 5 oracle: a plain list of every
    (file, successor) pair ever observed. *)
module Oracle : sig
  type t

  val create : unit -> t
  val observe : t -> file:int -> successor:int -> unit
  val mem : t -> file:int -> successor:int -> bool
end
