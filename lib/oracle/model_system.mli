(** Brute-force reference replay of the paper's aggregating
    configurations: the client cache of Fig. 3 ({!Agg_core.Client_cache})
    and the two-level client + server path of Fig. 4
    ({!Agg_core.Server_cache}), rebuilt from {!Model_cache} and
    {!Model_successor} with the group construction and block insertion
    restated in the simplest possible terms. Step-for-step the models
    produce the same hit/miss outcomes, resident sets, and metrics
    (demand fetches included) as the optimized implementations. *)

(** Reference aggregating client (Fig. 3). *)
module Client : sig
  type t

  val create : ?config:Agg_core.Config.t -> capacity:int -> unit -> t
  val access : t -> int -> bool
  (** [true] on a cache hit, mirroring {!Agg_core.Client_cache.access}. *)

  val resident : t -> int -> bool
  val contents : t -> int list
  val metrics : t -> Agg_core.Metrics.client
  val run : t -> Agg_trace.Trace.t -> Agg_core.Metrics.client
end

(** Reference two-level system (Fig. 4): an intervening client cache in
    front of a plain or aggregating server cache. *)
module Server : sig
  type t

  val create :
    ?cooperative:bool ->
    filter_kind:Agg_cache.Cache.kind ->
    filter_capacity:int ->
    server_capacity:int ->
    scheme:Agg_core.Server_cache.scheme ->
    unit ->
    t

  val access : t -> int -> Agg_core.Server_cache.outcome
  val server_contents : t -> int list
  val metrics : t -> Agg_core.Metrics.server
  val run : t -> Agg_trace.Trace.t -> Agg_core.Metrics.server
end
