open Agg_util
module Cache = Agg_cache.Cache
module Policy = Agg_cache.Policy

(* Every model below represents recency orders as plain [int list]s with
   the hot end first, and does membership tests by linear scan. The point
   is to restate each policy's semantics in the most transparent terms
   available; none of the clever structures of lib/cache appear here. *)

let remove_one key l = List.filter (fun k -> k <> key) l
let push_front key l = key :: l
let push_back key l = l @ [ key ]

(* [pop_back l] is [(last element, rest)]. *)
let pop_back l =
  match List.rev l with [] -> (None, l) | last :: rev_rest -> (Some last, List.rev rev_rest)

let move_to_front key l = key :: remove_one key l
let move_to_back key l = remove_one key l @ [ key ]

(* --- LRU / MRU / FIFO: one recency list -------------------------------- *)

type order_model = { mutable order : int list (* hot end first *) }

(* --- LFU: full (count, tick) bookkeeping ------------------------------- *)

type lfu_entry = { mutable count : int; mutable tick : int }
type lfu_model = { mutable entries : (int * lfu_entry) list; mutable lfu_clock : int }

(* --- CLOCK: the slot array, hand and reference bits, restated ---------- *)

type clock_slot = { mutable ckey : int; mutable referenced : bool; mutable occupied : bool }
type clock_model = { slots : clock_slot array; mutable hand : int; mutable csize : int }

(* --- SLRU: probationary and protected recency lists -------------------- *)

type slru_model = { prot_cap : int; mutable prob : int list; mutable prot : int list }

(* --- 2Q: A1in FIFO, Am LRU, and the ghost set with its FIFO order ------ *)

type twoq_model = {
  a1in_cap : int;
  tq_ghost_cap : int;
  mutable a1in : int list;
  mutable am : int list;
  mutable ghost_members : int list; (* membership, mirrors the hashtable *)
  mutable ghost_fifo : int list; (* arrival order, oldest first *)
}

(* --- MQ: per-queue recency lists, lifetimes, ghost counts -------------- *)

type mq_entry = { mutable mcount : int; mutable mqueue : int; mutable mexpire : int }

type mq_model = {
  lifetime : int;
  mq_ghost_cap : int;
  mq_lists : int list array; (* hot end first *)
  mutable mq_entries : (int * mq_entry) list;
  mutable mq_ghost : (int * int) list; (* key -> remembered count *)
  mutable mq_ghost_fifo : int list; (* oldest first *)
  mutable mq_time : int;
}

(* --- ARC: the four lists and the adaptation target --------------------- *)

type arc_model = {
  mutable t1 : int list;
  mutable t2 : int list;
  mutable b1 : int list;
  mutable b2 : int list;
  mutable p : int;
}

(* --- Random: the dense key array with swap-remove, plus the PRNG ------- *)

type random_model = { mutable keys : int list (* index order, position 0 first *); prng : Prng.t }

type state =
  | Lru of order_model
  | Mru of order_model
  | Fifo of order_model
  | Lfu of lfu_model
  | Clock of clock_model
  | Slru of slru_model
  | Twoq of twoq_model
  | Mq of mq_model
  | Arc of arc_model
  | Random of random_model

(* The weighted fields restate [Policy.Weighted_of_unit]'s side-car
   bookkeeping as an assoc list: only non-unit sizes are recorded, so at
   unit weights the list stays empty and [wused] mirrors the count. *)
type t = {
  kind : Cache.kind;
  capacity : int;
  state : state;
  mutable wsizes : (int * int) list; (* key -> size, non-unit entries only *)
  mutable wnonunit : int; (* residents whose size is not 1 *)
  mutable wused : int; (* total resident size *)
}

(* The seed baked into [Random_policy.create], so model and optimized
   caches draw identical victim streams. *)
let default_random_seed = 0x5eed

let create ?(seed = default_random_seed) kind ~capacity =
  if capacity <= 0 then invalid_arg "Model_cache.create: capacity must be positive";
  let state =
    match kind with
    | Cache.Lru -> Lru { order = [] }
    | Cache.Mru -> Mru { order = [] }
    | Cache.Fifo -> Fifo { order = [] }
    | Cache.Lfu -> Lfu { entries = []; lfu_clock = 0 }
    | Cache.Clock ->
        Clock
          {
            slots = Array.init capacity (fun _ -> { ckey = 0; referenced = false; occupied = false });
            hand = 0;
            csize = 0;
          }
    | Cache.Slru -> Slru { prot_cap = max 1 (2 * capacity / 3); prob = []; prot = [] }
    | Cache.Twoq ->
        Twoq
          {
            a1in_cap = max 1 (capacity / 4);
            tq_ghost_cap = max 1 (capacity / 2);
            a1in = [];
            am = [];
            ghost_members = [];
            ghost_fifo = [];
          }
    | Cache.Mq ->
        Mq
          {
            lifetime = 4 * capacity;
            mq_ghost_cap = 4 * capacity;
            mq_lists = Array.make 8 [];
            mq_entries = [];
            mq_ghost = [];
            mq_ghost_fifo = [];
            mq_time = 0;
          }
    | Cache.Arc -> Arc { t1 = []; t2 = []; b1 = []; b2 = []; p = 0 }
    | Cache.Random -> Random { keys = []; prng = Prng.create ~seed () }
  in
  { kind; capacity; state; wsizes = []; wnonunit = 0; wused = 0 }

let kind t = t.kind
let capacity t = t.capacity

(* --- sizes and membership --------------------------------------------- *)

let size t =
  match t.state with
  | Lru m | Mru m | Fifo m -> List.length m.order
  | Lfu m -> List.length m.entries
  | Clock m -> m.csize
  | Slru m -> List.length m.prob + List.length m.prot
  | Twoq m -> List.length m.a1in + List.length m.am
  | Mq m -> List.length m.mq_entries
  | Arc m -> List.length m.t1 + List.length m.t2
  | Random m -> List.length m.keys

let mem t key =
  match t.state with
  | Lru m | Mru m | Fifo m -> List.mem key m.order
  | Lfu m -> List.mem_assoc key m.entries
  | Clock m -> Array.exists (fun s -> s.occupied && s.ckey = key) m.slots
  | Slru m -> List.mem key m.prob || List.mem key m.prot
  | Twoq m -> List.mem key m.a1in || List.mem key m.am
  | Mq m -> List.mem_assoc key m.mq_entries
  | Arc m -> List.mem key m.t1 || List.mem key m.t2
  | Random m -> List.mem key m.keys

let contents t =
  match t.state with
  | Lru m | Mru m | Fifo m -> m.order
  | Lfu m -> List.map fst m.entries
  | Clock m ->
      Array.fold_left (fun acc s -> if s.occupied then s.ckey :: acc else acc) [] m.slots
  | Slru m -> m.prot @ m.prob
  | Twoq m -> m.am @ m.a1in
  | Mq m -> List.map fst m.mq_entries
  | Arc m -> m.t2 @ m.t1
  | Random m -> m.keys

(* --- LFU helpers -------------------------------------------------------- *)

let lfu_tick (m : lfu_model) =
  m.lfu_clock <- m.lfu_clock + 1;
  m.lfu_clock

(* The victim is the entry with the smallest (count, tick) pair; ticks are
   unique, so the order is total. *)
let lfu_victim (m : lfu_model) =
  List.fold_left
    (fun acc (key, e) ->
      match acc with
      | None -> Some (key, e)
      | Some (_, best) ->
          if e.count < best.count || (e.count = best.count && e.tick < best.tick) then Some (key, e)
          else acc)
    None m.entries

let lfu_evict (m : lfu_model) =
  match lfu_victim m with
  | None -> None
  | Some (key, _) ->
      m.entries <- List.remove_assoc key m.entries;
      Some key

(* --- CLOCK helpers ------------------------------------------------------ *)

let clock_advance capacity (m : clock_model) = m.hand <- (m.hand + 1) mod capacity

let rec clock_find_victim capacity (m : clock_model) =
  let slot = m.slots.(m.hand) in
  if not slot.occupied then begin
    clock_advance capacity m;
    clock_find_victim capacity m
  end
  else if slot.referenced then begin
    slot.referenced <- false;
    clock_advance capacity m;
    clock_find_victim capacity m
  end
  else begin
    let at = m.hand in
    clock_advance capacity m;
    at
  end

(* First unoccupied slot scanning forward from the hand; the hand itself
   does not move. *)
let clock_free_slot capacity (m : clock_model) =
  let rec scan i remaining =
    if remaining = 0 then None
    else if not m.slots.(i).occupied then Some i
    else scan ((i + 1) mod capacity) (remaining - 1)
  in
  scan m.hand capacity

let clock_evict capacity (m : clock_model) =
  if m.csize = 0 then None
  else begin
    let i = clock_find_victim capacity m in
    let victim = m.slots.(i).ckey in
    m.slots.(i).occupied <- false;
    m.csize <- m.csize - 1;
    Some victim
  end

(* --- SLRU helpers ------------------------------------------------------- *)

let slru_demote_one (m : slru_model) =
  match pop_back m.prot with
  | Some key, rest ->
      m.prot <- rest;
      m.prob <- push_front key m.prob
  | None, _ -> ()

let slru_promote (m : slru_model) key =
  if List.mem key m.prot then m.prot <- move_to_front key m.prot
  else if List.mem key m.prob then begin
    m.prob <- remove_one key m.prob;
    m.prot <- push_front key m.prot;
    if List.length m.prot > m.prot_cap then slru_demote_one m
  end

let slru_evict (m : slru_model) =
  match pop_back m.prob with
  | Some victim, rest ->
      m.prob <- rest;
      Some victim
  | None, _ -> (
      match pop_back m.prot with
      | Some victim, rest ->
          m.prot <- rest;
          Some victim
      | None, _ -> None)

(* --- 2Q helpers --------------------------------------------------------- *)

let twoq_ghost_remember (m : twoq_model) key =
  if not (List.mem key m.ghost_members) then begin
    m.ghost_members <- key :: m.ghost_members;
    m.ghost_fifo <- m.ghost_fifo @ [ key ];
    if List.length m.ghost_fifo > m.tq_ghost_cap then begin
      match m.ghost_fifo with
      | oldest :: rest ->
          m.ghost_fifo <- rest;
          m.ghost_members <- remove_one oldest m.ghost_members
      | [] -> ()
    end
  end

let twoq_evict (m : twoq_model) =
  let from_a1in () =
    match pop_back m.a1in with
    | Some victim, rest ->
        m.a1in <- rest;
        twoq_ghost_remember m victim;
        Some victim
    | None, _ -> None
  in
  let from_am () =
    match pop_back m.am with
    | Some victim, rest ->
        m.am <- rest;
        Some victim
    | None, _ -> None
  in
  if List.length m.a1in > m.a1in_cap then from_a1in ()
  else match from_am () with Some v -> Some v | None -> from_a1in ()

(* --- MQ helpers --------------------------------------------------------- *)

let mq_queue_for (m : mq_model) count =
  if count <= 0 then 0
  else begin
    let q = ref 0 in
    let c = ref count in
    while !c > 1 do
      c := !c lsr 1;
      incr q
    done;
    min !q (Array.length m.mq_lists - 1)
  end

let mq_entry_of (m : mq_model) key = List.assoc_opt key m.mq_entries

(* Adjust(): at most one expired block demoted per queue per tick, taken
   from the LRU end, re-inserted at the MRU end one level down. *)
let mq_adjust (m : mq_model) =
  let n = Array.length m.mq_lists in
  for q = n - 1 downto 1 do
    match fst (pop_back m.mq_lists.(q)) with
    | Some key -> (
        match mq_entry_of m key with
        | Some e when e.mexpire < m.mq_time ->
            m.mq_lists.(q) <- remove_one key m.mq_lists.(q);
            e.mqueue <- q - 1;
            e.mexpire <- m.mq_time + m.lifetime;
            m.mq_lists.(q - 1) <- push_front key m.mq_lists.(q - 1)
        | Some _ | None -> ())
    | None -> ()
  done

let mq_tick (m : mq_model) =
  m.mq_time <- m.mq_time + 1;
  mq_adjust m

let mq_ghost_remember (m : mq_model) key count =
  if not (List.mem_assoc key m.mq_ghost) then begin
    m.mq_ghost_fifo <- m.mq_ghost_fifo @ [ key ];
    if List.length m.mq_ghost_fifo > m.mq_ghost_cap then begin
      match m.mq_ghost_fifo with
      | victim :: rest ->
          m.mq_ghost_fifo <- rest;
          m.mq_ghost <- List.remove_assoc victim m.mq_ghost
      | [] -> ()
    end
  end;
  m.mq_ghost <- (key, count) :: List.remove_assoc key m.mq_ghost

let mq_evict (m : mq_model) =
  let n = Array.length m.mq_lists in
  let rec scan q =
    if q >= n then None
    else
      match pop_back m.mq_lists.(q) with
      | Some victim, rest ->
          m.mq_lists.(q) <- rest;
          (match mq_entry_of m victim with
          | Some e -> mq_ghost_remember m victim e.mcount
          | None -> ());
          m.mq_entries <- List.remove_assoc victim m.mq_entries;
          Some victim
      | None, _ -> scan (q + 1)
  in
  scan 0

let mq_promote (m : mq_model) key =
  match mq_entry_of m key with
  | Some e ->
      mq_tick m;
      m.mq_lists.(e.mqueue) <- remove_one key m.mq_lists.(e.mqueue);
      e.mcount <- e.mcount + 1;
      e.mqueue <- mq_queue_for m e.mcount;
      e.mexpire <- m.mq_time + m.lifetime;
      m.mq_lists.(e.mqueue) <- push_front key m.mq_lists.(e.mqueue)
  | None -> ()

(* --- ARC helpers -------------------------------------------------------- *)

type arc_where = AT1 | AT2 | AB1 | AB2

let arc_where_of (m : arc_model) key =
  if List.mem key m.t1 then Some AT1
  else if List.mem key m.t2 then Some AT2
  else if List.mem key m.b1 then Some AB1
  else if List.mem key m.b2 then Some AB2
  else None

let arc_detach (m : arc_model) key =
  m.t1 <- remove_one key m.t1;
  m.t2 <- remove_one key m.t2;
  m.b1 <- remove_one key m.b1;
  m.b2 <- remove_one key m.b2

let arc_size (m : arc_model) = List.length m.t1 + List.length m.t2

(* REPLACE: push the victim of T1 (into ghost B1) or T2 (into B2) per the
   adaptation target; fall back to the other list when the chosen one is
   empty. Ghost entries join at the list front. *)
let arc_replace capacity (m : arc_model) ~hit_in_b2 =
  ignore capacity;
  let t1_len = List.length m.t1 in
  let from_t1 = t1_len >= 1 && (t1_len > m.p || (hit_in_b2 && t1_len = m.p)) in
  let try_pop use_t1 =
    if use_t1 then
      match pop_back m.t1 with
      | Some victim, rest ->
          m.t1 <- rest;
          m.b1 <- push_front victim m.b1;
          Some victim
      | None, _ -> None
    else
      match pop_back m.t2 with
      | Some victim, rest ->
          m.t2 <- rest;
          m.b2 <- push_front victim m.b2;
          Some victim
      | None, _ -> None
  in
  match try_pop from_t1 with Some v -> Some v | None -> try_pop (not from_t1)

let arc_drop_ghost_lru (m : arc_model) ~b1 =
  if b1 then (
    match pop_back m.b1 with Some _, rest -> m.b1 <- rest | None, _ -> ())
  else match pop_back m.b2 with Some _, rest -> m.b2 <- rest | None, _ -> ()

(* --- Random helpers ----------------------------------------------------- *)

(* Swap-remove at position [i], exactly as the optimized dense array. *)
let random_remove_at (m : random_model) i =
  let arr = Array.of_list m.keys in
  let last = Array.length arr - 1 in
  let victim = arr.(i) in
  arr.(i) <- arr.(last);
  m.keys <- Array.to_list (Array.sub arr 0 last);
  victim

let random_evict (m : random_model) =
  let n = List.length m.keys in
  if n = 0 then None else Some (random_remove_at m (Prng.int m.prng n))

(* --- the Policy.S surface ----------------------------------------------- *)

let promote t key =
  match t.state with
  | Lru m | Mru m -> if List.mem key m.order then m.order <- move_to_front key m.order
  | Fifo _ -> ()
  | Lfu m -> (
      match List.assoc_opt key m.entries with
      | Some e ->
          e.count <- e.count + 1;
          e.tick <- lfu_tick m
      | None -> ())
  | Clock m ->
      Array.iter (fun s -> if s.occupied && s.ckey = key then s.referenced <- true) m.slots
  | Slru m -> slru_promote m key
  | Twoq m -> if List.mem key m.am then m.am <- move_to_front key m.am
  | Mq m -> mq_promote m key
  | Arc m -> (
      match arc_where_of m key with
      | Some (AT1 | AT2) ->
          arc_detach m key;
          m.t2 <- push_front key m.t2
      | Some (AB1 | AB2) | None -> ())
  | Random _ -> ()

let unit_evict t =
  match t.state with
  | Lru m | Fifo m -> (
      match pop_back m.order with
      | Some victim, rest ->
          m.order <- rest;
          Some victim
      | None, _ -> None)
  | Mru m -> (
      match m.order with
      | victim :: rest ->
          m.order <- rest;
          Some victim
      | [] -> None)
  | Lfu m -> lfu_evict m
  | Clock m -> clock_evict t.capacity m
  | Slru m -> slru_evict m
  | Twoq m -> twoq_evict m
  | Mq m -> mq_evict m
  | Arc m -> arc_replace t.capacity m ~hit_in_b2:false
  | Random m -> random_evict m

let unit_insert t ~pos key =
  let full () = size t >= t.capacity in
  match t.state with
  | Lru m | Mru m ->
      if List.mem key m.order then begin
        (match pos with
        | Policy.Hot -> m.order <- move_to_front key m.order
        | Policy.Cold -> m.order <- move_to_back key m.order);
        None
      end
      else begin
        let victim = if full () then unit_evict t else None in
        (match pos with
        | Policy.Hot -> m.order <- push_front key m.order
        | Policy.Cold -> m.order <- push_back key m.order);
        victim
      end
  | Fifo m ->
      if List.mem key m.order then begin
        (match pos with Policy.Hot -> () | Policy.Cold -> m.order <- move_to_back key m.order);
        None
      end
      else begin
        let victim = if full () then unit_evict t else None in
        (match pos with
        | Policy.Hot -> m.order <- push_front key m.order
        | Policy.Cold -> m.order <- push_back key m.order);
        victim
      end
  | Lfu m -> (
      match List.assoc_opt key m.entries with
      | Some e ->
          (match pos with
          | Policy.Hot -> e.count <- e.count + 1
          | Policy.Cold -> e.count <- 0);
          e.tick <- lfu_tick m;
          None
      | None ->
          let victim = if full () then lfu_evict m else None in
          let count = match pos with Policy.Hot -> 1 | Policy.Cold -> 0 in
          m.entries <- (key, { count; tick = lfu_tick m }) :: m.entries;
          victim)
  | Clock m -> (
      match Array.find_opt (fun s -> s.occupied && s.ckey = key) m.slots with
      | Some slot ->
          slot.referenced <- (match pos with Policy.Hot -> true | Policy.Cold -> false);
          None
      | None ->
          let slot_idx, victim =
            if m.csize < t.capacity then (
              match clock_free_slot t.capacity m with
              | Some i -> (i, None)
              | None -> assert false)
            else begin
              let i = clock_find_victim t.capacity m in
              let old = m.slots.(i).ckey in
              m.csize <- m.csize - 1;
              (i, Some old)
            end
          in
          let slot = m.slots.(slot_idx) in
          slot.ckey <- key;
          slot.occupied <- true;
          slot.referenced <- (match pos with Policy.Hot -> true | Policy.Cold -> false);
          m.csize <- m.csize + 1;
          victim)
  | Slru m ->
      if List.mem key m.prob || List.mem key m.prot then begin
        (match pos with
        | Policy.Hot -> slru_promote m key
        | Policy.Cold ->
            if List.mem key m.prob then m.prob <- move_to_back key m.prob
            else begin
              m.prot <- remove_one key m.prot;
              m.prob <- push_back key m.prob
            end);
        None
      end
      else begin
        let victim = if full () then slru_evict m else None in
        (match pos with
        | Policy.Hot -> m.prob <- push_front key m.prob
        | Policy.Cold -> m.prob <- push_back key m.prob);
        victim
      end
  | Twoq m ->
      if List.mem key m.a1in then begin
        (match pos with
        | Policy.Hot -> ()
        | Policy.Cold -> m.a1in <- move_to_back key m.a1in);
        None
      end
      else if List.mem key m.am then begin
        (match pos with
        | Policy.Hot -> m.am <- move_to_front key m.am
        | Policy.Cold -> m.am <- move_to_back key m.am);
        None
      end
      else begin
        let victim = if full () then twoq_evict m else None in
        if List.mem key m.ghost_members && pos = Policy.Hot then begin
          (* remembered while ghosted: admit straight into the main queue
             (membership is forgotten; the FIFO slot is left behind,
             exactly like the optimized cache) *)
          m.ghost_members <- remove_one key m.ghost_members;
          m.am <- push_front key m.am
        end
        else begin
          match pos with
          | Policy.Hot -> m.a1in <- push_front key m.a1in
          | Policy.Cold -> m.a1in <- push_back key m.a1in
        end;
        victim
      end
  | Mq m -> (
      match mq_entry_of m key with
      | Some e ->
          (match pos with
          | Policy.Hot -> mq_promote m key
          | Policy.Cold ->
              m.mq_lists.(e.mqueue) <- remove_one key m.mq_lists.(e.mqueue);
              e.mqueue <- 0;
              e.mcount <- 0;
              m.mq_lists.(0) <- push_back key m.mq_lists.(0));
          None
      | None ->
          mq_tick m;
          let victim = if full () then mq_evict m else None in
          let remembered = Option.value ~default:0 (List.assoc_opt key m.mq_ghost) in
          let count = match pos with Policy.Hot -> remembered + 1 | Policy.Cold -> 0 in
          let queue = mq_queue_for m count in
          (match pos with
          | Policy.Hot -> m.mq_lists.(queue) <- push_front key m.mq_lists.(queue)
          | Policy.Cold -> m.mq_lists.(queue) <- push_back key m.mq_lists.(queue));
          m.mq_entries <-
            (key, { mcount = count; mqueue = queue; mexpire = m.mq_time + m.lifetime })
            :: m.mq_entries;
          victim)
  | Arc m -> (
      match arc_where_of m key with
      | Some (AT1 | AT2) ->
          (match pos with
          | Policy.Hot ->
              arc_detach m key;
              m.t2 <- push_front key m.t2
          | Policy.Cold ->
              arc_detach m key;
              m.t1 <- push_back key m.t1);
          None
      | Some ((AB1 | AB2) as ghost) -> (
          match pos with
          | Policy.Hot ->
              let b1_len = max 1 (List.length m.b1) in
              let b2_len = max 1 (List.length m.b2) in
              let hit_in_b2 = ghost = AB2 in
              if hit_in_b2 then m.p <- max 0 (m.p - max 1 (b1_len / b2_len))
              else m.p <- min t.capacity (m.p + max 1 (b2_len / b1_len));
              let victim =
                if arc_size m >= t.capacity then arc_replace t.capacity m ~hit_in_b2 else None
              in
              arc_detach m key;
              m.t2 <- push_front key m.t2;
              victim
          | Policy.Cold ->
              let victim =
                if arc_size m >= t.capacity then arc_replace t.capacity m ~hit_in_b2:false
                else None
              in
              arc_detach m key;
              m.t1 <- push_back key m.t1;
              victim)
      | None ->
          let l1 = List.length m.t1 + List.length m.b1 in
          let total =
            List.length m.t1 + List.length m.t2 + List.length m.b1 + List.length m.b2
          in
          let victim =
            if l1 >= t.capacity then
              if List.length m.t1 < t.capacity then begin
                arc_drop_ghost_lru m ~b1:true;
                arc_replace t.capacity m ~hit_in_b2:false
              end
              else begin
                match pop_back m.t1 with
                | Some v, rest ->
                    m.t1 <- rest;
                    Some v
                | None, _ -> None
              end
            else if total >= t.capacity then begin
              if total >= 2 * t.capacity then arc_drop_ghost_lru m ~b1:false;
              if arc_size m >= t.capacity then arc_replace t.capacity m ~hit_in_b2:false
              else None
            end
            else None
          in
          (match pos with
          | Policy.Hot -> m.t1 <- push_front key m.t1
          | Policy.Cold -> m.t1 <- push_back key m.t1);
          victim)
  | Random m ->
      if List.mem key m.keys then None
      else begin
        let n = List.length m.keys in
        let victim = if n >= t.capacity then Some (random_remove_at m (Prng.int m.prng n)) else None in
        m.keys <- m.keys @ [ key ];
        victim
      end

let unit_remove t key =
  match t.state with
  | Lru m | Mru m | Fifo m -> m.order <- remove_one key m.order
  | Lfu m -> m.entries <- List.remove_assoc key m.entries
  | Clock m ->
      Array.iter
        (fun s ->
          if s.occupied && s.ckey = key then begin
            s.occupied <- false;
            s.referenced <- false;
            m.csize <- m.csize - 1
          end)
        m.slots
  | Slru m ->
      m.prob <- remove_one key m.prob;
      m.prot <- remove_one key m.prot
  | Twoq m ->
      m.a1in <- remove_one key m.a1in;
      m.am <- remove_one key m.am
  | Mq m -> (
      match mq_entry_of m key with
      | Some e ->
          m.mq_lists.(e.mqueue) <- remove_one key m.mq_lists.(e.mqueue);
          m.mq_entries <- List.remove_assoc key m.mq_entries
      | None -> ())
  | Arc m -> arc_detach m key (* drops ghosts too, like the optimized cache *)
  | Random m -> (
      let rec index_of i = function
        | [] -> None
        | k :: _ when k = key -> Some i
        | _ :: rest -> index_of (i + 1) rest
      in
      match index_of 0 m.keys with Some i -> ignore (random_remove_at m i) | None -> ())

let unit_clear t =
  match t.state with
  | Lru m | Mru m | Fifo m -> m.order <- []
  | Lfu m ->
      m.entries <- [];
      m.lfu_clock <- 0
  | Clock m ->
      Array.iter
        (fun s ->
          s.occupied <- false;
          s.referenced <- false)
        m.slots;
      m.hand <- 0;
      m.csize <- 0
  | Slru m ->
      m.prob <- [];
      m.prot <- []
  | Twoq m ->
      m.a1in <- [];
      m.am <- [];
      m.ghost_members <- [];
      m.ghost_fifo <- []
  | Mq m ->
      Array.fill m.mq_lists 0 (Array.length m.mq_lists) [];
      m.mq_entries <- [];
      m.mq_ghost <- [];
      m.mq_ghost_fifo <- [];
      m.mq_time <- 0
  | Arc m ->
      m.t1 <- [];
      m.t2 <- [];
      m.b1 <- [];
      m.b2 <- [];
      m.p <- 0
  | Random m -> m.keys <- [] (* the PRNG stream continues, like the optimized cache *)

(* --- the weighted surface ------------------------------------------------
   Restates [Policy.Weighted_of_unit] over the unit models above: the
   all-unit fast path delegates to the model's native insert, the general
   path pre-evicts via [unit_evict], oversize keys bypass the cache. *)

let size_of t key = Option.value ~default:1 (List.assoc_opt key t.wsizes)

let note_drop t key =
  let s = size_of t key in
  t.wused <- t.wused - s;
  if s <> 1 then begin
    t.wsizes <- List.remove_assoc key t.wsizes;
    t.wnonunit <- t.wnonunit - 1
  end

let used t = t.wused
let charge _ _ ~cost:_ = ()

let evict t =
  match unit_evict t with
  | Some victim as r ->
      note_drop t victim;
      r
  | None -> None

let insert t ~pos ~weight:w key =
  Policy.check_weight ~who:("model." ^ Cache.kind_name t.kind) w;
  if mem t key then begin
    ignore (unit_insert t ~pos key);
    []
  end
  else if w.Policy.size > t.capacity then []
  else if t.wnonunit = 0 && w.Policy.size = 1 then begin
    match unit_insert t ~pos key with
    | Some victim -> [ victim ]
    | None ->
        t.wused <- t.wused + 1;
        []
  end
  else begin
    let victims = ref [] in
    while t.wused + w.Policy.size > t.capacity do
      match unit_evict t with
      | Some v ->
          note_drop t v;
          victims := v :: !victims
      | None -> assert false
    done;
    (* ghost-bearing kinds (ARC) may shed a resident under directory
       pressure even with room by count; mirror the wrapper and account
       any victim the unit insert produces on its own *)
    (match unit_insert t ~pos key with
    | Some v ->
        note_drop t v;
        victims := v :: !victims
    | None -> ());
    t.wused <- t.wused + w.Policy.size;
    if w.Policy.size <> 1 then begin
      t.wsizes <- (key, w.Policy.size) :: t.wsizes;
      t.wnonunit <- t.wnonunit + 1
    end;
    List.rev !victims
  end

let remove t key =
  if mem t key then note_drop t key;
  unit_remove t key

let clear t =
  unit_clear t;
  t.wsizes <- [];
  t.wnonunit <- 0;
  t.wused <- 0

(* --- weighted reference policies -----------------------------------------

   List-based restatements of the Landlord / GreedyDual-Size / bundle
   baselines in lib/baselines, implementing the same [Policy.S] so the
   diff engine can pair each optimized policy with its model through the
   generic driver. Victim selection is canonical: scan the recency order
   hot end first and keep the entry with the smallest priority, ties
   resolved towards the cold end ([<=] while scanning). Both sides
   perform float arithmetic in the same per-key order, so credits and
   priorities compare exactly. *)

module Landlord = struct
  type entry = { lsize : int; mutable lcredit : float }

  type t = {
    lcap : int;
    mutable lents : (int * entry) list; (* recency order, hot end first *)
    mutable lused : int;
  }

  let policy_name = "landlord"

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Model_cache.Landlord.create: capacity must be positive";
    { lcap = capacity; lents = []; lused = 0 }

  let capacity t = t.lcap
  let size t = List.length t.lents
  let used t = t.lused
  let mem t key = List.mem_assoc key t.lents
  let contents t = List.map fst t.lents

  let reposition t ~pos key =
    match List.assoc_opt key t.lents with
    | None -> ()
    | Some e -> (
        let rest = List.remove_assoc key t.lents in
        match pos with
        | Policy.Hot -> t.lents <- (key, e) :: rest
        | Policy.Cold -> t.lents <- rest @ [ (key, e) ])

  let promote t key = if mem t key then reposition t ~pos:Policy.Hot key

  let charge t key ~cost =
    if cost <= 0 then invalid_arg "Model_cache.Landlord.charge: cost must be positive";
    match List.assoc_opt key t.lents with
    | Some e -> e.lcredit <- float_of_int cost
    | None -> ()

  (* The victim is the resident with the smallest credit/size rent ratio,
     ties towards the cold end; every other resident then pays rent
     [ratio * size] (Landlord's delta step) and the victim leaves with
     exactly zero credit. *)
  let evict t =
    match t.lents with
    | [] -> None
    | (k0, e0) :: rest ->
        let ratio e = e.lcredit /. float_of_int e.lsize in
        let victim, _ =
          List.fold_left
            (fun (bk, br) (k, e) ->
              let r = ratio e in
              if r <= br then (k, r) else (bk, br))
            (k0, ratio e0) rest
        in
        let delta = ratio (List.assoc victim t.lents) in
        List.iter
          (fun (k, e) ->
            if k <> victim then e.lcredit <- e.lcredit -. (delta *. float_of_int e.lsize))
          t.lents;
        let e = List.assoc victim t.lents in
        t.lents <- List.remove_assoc victim t.lents;
        t.lused <- t.lused - e.lsize;
        Some victim

  let insert t ~pos ~weight:w key =
    Policy.check_weight ~who:"model.landlord" w;
    if mem t key then begin
      reposition t ~pos key;
      []
    end
    else if w.Policy.size > t.lcap then []
    else begin
      let victims = ref [] in
      while t.lused + w.Policy.size > t.lcap do
        match evict t with Some v -> victims := v :: !victims | None -> assert false
      done;
      let e = { lsize = w.Policy.size; lcredit = float_of_int w.Policy.cost } in
      (match pos with
      | Policy.Hot -> t.lents <- (key, e) :: t.lents
      | Policy.Cold -> t.lents <- t.lents @ [ (key, e) ]);
      t.lused <- t.lused + w.Policy.size;
      List.rev !victims
    end

  let remove t key =
    match List.assoc_opt key t.lents with
    | Some e ->
        t.lents <- List.remove_assoc key t.lents;
        t.lused <- t.lused - e.lsize
    | None -> ()

  let clear t =
    t.lents <- [];
    t.lused <- 0

  let request_bundle t ~weight_of keys =
    let members = List.fold_left (fun acc k -> if List.mem k acc then acc else k :: acc) [] keys in
    List.concat_map
      (fun k ->
        if mem t k then begin
          promote t k;
          charge t k ~cost:(weight_of k).Policy.cost;
          []
        end
        else insert t ~pos:Policy.Hot ~weight:(weight_of k) k)
      (List.rev members)
end

module Gds = struct
  type entry = { gsize : int; mutable h : float }

  type t = {
    gcap : int;
    mutable inflation : float; (* L, the non-decreasing eviction floor *)
    mutable gents : (int * entry) list; (* recency order, hot end first *)
    mutable gused : int;
  }

  let policy_name = "gds"

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Model_cache.Gds.create: capacity must be positive";
    { gcap = capacity; inflation = 0.0; gents = []; gused = 0 }

  let capacity t = t.gcap
  let size t = List.length t.gents
  let used t = t.gused
  let mem t key = List.mem_assoc key t.gents
  let contents t = List.map fst t.gents

  let reposition t ~pos key =
    match List.assoc_opt key t.gents with
    | None -> ()
    | Some e -> (
        let rest = List.remove_assoc key t.gents in
        match pos with
        | Policy.Hot -> t.gents <- (key, e) :: rest
        | Policy.Cold -> t.gents <- rest @ [ (key, e) ])

  let promote t key = if mem t key then reposition t ~pos:Policy.Hot key

  let priority t ~size ~cost = t.inflation +. (float_of_int cost /. float_of_int size)

  let charge t key ~cost =
    if cost <= 0 then invalid_arg "Model_cache.Gds.charge: cost must be positive";
    match List.assoc_opt key t.gents with
    | Some e -> e.h <- priority t ~size:e.gsize ~cost
    | None -> ()

  (* Victim: smallest H, ties towards the cold end; L rises to the
     victim's H (GreedyDual-Size aging). *)
  let evict t =
    match t.gents with
    | [] -> None
    | (k0, e0) :: rest ->
        let victim, victim_h =
          List.fold_left
            (fun (bk, bh) (k, e) -> if e.h <= bh then (k, e.h) else (bk, bh))
            (k0, e0.h) rest
        in
        let e = List.assoc victim t.gents in
        t.gents <- List.remove_assoc victim t.gents;
        t.gused <- t.gused - e.gsize;
        t.inflation <- victim_h;
        Some victim

  let insert t ~pos ~weight:w key =
    Policy.check_weight ~who:"model.gds" w;
    if mem t key then begin
      reposition t ~pos key;
      []
    end
    else if w.Policy.size > t.gcap then []
    else begin
      let victims = ref [] in
      while t.gused + w.Policy.size > t.gcap do
        match evict t with Some v -> victims := v :: !victims | None -> assert false
      done;
      let e = { gsize = w.Policy.size; h = priority t ~size:w.Policy.size ~cost:w.Policy.cost } in
      (match pos with
      | Policy.Hot -> t.gents <- (key, e) :: t.gents
      | Policy.Cold -> t.gents <- t.gents @ [ (key, e) ]);
      t.gused <- t.gused + w.Policy.size;
      List.rev !victims
    end

  let remove t key =
    match List.assoc_opt key t.gents with
    | Some e ->
        t.gents <- List.remove_assoc key t.gents;
        t.gused <- t.gused - e.gsize
    | None -> ()

  let clear t =
    t.gents <- [];
    t.gused <- 0;
    t.inflation <- 0.0
end

module Bundle = struct
  include Landlord

  let policy_name = "bundle"

  let insert t ~pos ~weight:w key =
    Policy.check_weight ~who:"model.bundle" w;
    insert t ~pos ~weight:w key
end
