(** Executable reference models of every replacement policy in
    {!Agg_cache}.

    Each model re-implements the {!Agg_cache.Policy.S} semantics with
    plain lists and linear scans — deliberately slow, obviously correct —
    so the optimized implementations can be driven in lockstep against
    them by {!Diff_engine}. The models are {e behaviourally identical} to
    the optimized caches: same eviction victims, same resident sets, same
    return values, for any operation sequence (the [Random] policy shares
    the optimized cache's PRNG seed so even its victims coincide).

    The weighted surface restates {!Agg_cache.Policy.Weighted_of_unit}
    over the unit models: while every resident is unit-size, [insert]
    delegates to the model's native insert path; once non-unit sizes are
    resident, room is made by repeated evictions; oversize keys bypass
    the cache. The {!Landlord}, {!Gds} and {!Bundle} submodules are
    list-based restatements of the weighted baselines in
    [Agg_baselines]. *)

type t

val create : ?seed:int -> Agg_cache.Cache.kind -> capacity:int -> t
(** [create kind ~capacity] is an empty reference cache. [seed] (default
    the seed used by {!Agg_cache.Cache.create}) only affects the [Random]
    kind. @raise Invalid_argument when [capacity <= 0]. *)

val kind : t -> Agg_cache.Cache.kind
val capacity : t -> int
val size : t -> int

val used : t -> int
(** Total resident size; equals {!size} at unit weights. *)

val mem : t -> int -> bool

val promote : t -> int -> unit
(** Records an access to a resident key; no-op when absent — mirrors
    [Policy.S.promote]. *)

val insert :
  t -> pos:Agg_cache.Policy.insert_position -> weight:Agg_cache.Policy.weight -> int -> int list
(** Mirrors [Policy.S.insert]: makes the key resident, evicting as many
    victims as its size requires, and returns them in eviction order; a
    resident key is only repositioned (returns [[]], never evicts); an
    oversize key bypasses the cache. *)

val charge : t -> int -> cost:int -> unit
(** Mirrors [Policy.S.charge] — a no-op for all ten unit-weight kinds. *)

val evict : t -> int option
(** Forces out the model's current victim; [None] when empty. *)

val remove : t -> int -> unit
val contents : t -> int list
(** Resident keys, in no particular order (compare as sets). *)

val clear : t -> unit
(** Mirrors [Policy.S.clear], including what it does {e not} reset (the
    [Random] PRNG stream continues, exactly like the optimized cache). *)

(** Reference Landlord (Young's rent-based file caching): each resident
    holds credit, initially its retrieval cost; eviction charges every
    resident rent proportional to its size at the minimal credit/size
    ratio and removes the resident whose credit reaches zero (ties
    towards the cold end of the recency order). A demand hit re-credits
    the key via [charge]. *)
module Landlord : sig
  include Agg_cache.Policy.S

  val request_bundle : t -> weight_of:(int -> Agg_cache.Policy.weight) -> int list -> int list
  (** [request_bundle t ~weight_of keys] serves one bundle request:
      resident members are promoted and re-credited, missing members are
      inserted hot with their weights. Returns all victims in eviction
      order. Duplicate members are served once. *)
end

(** Reference GreedyDual-Size: priority [H = L + cost/size] assigned on
    insertion and on [charge]; the victim is the minimal-[H] resident
    (ties towards the cold end) and the inflation floor [L] rises to the
    victim's priority. *)
module Gds : Agg_cache.Policy.S

(** Reference bundle-caching policy — Landlord mechanics with the
    bundle entry point as the primary interface (Qin & Etesami's
    file-bundle setting, where an aggregated group fetch arrives as one
    request). Singleton requests make it coincide with {!Landlord}. *)
module Bundle : sig
  include Agg_cache.Policy.S

  val request_bundle : t -> weight_of:(int -> Agg_cache.Policy.weight) -> int list -> int list
  (** See {!Landlord.request_bundle}. *)
end
