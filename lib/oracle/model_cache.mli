(** Executable reference models of every replacement policy in
    {!Agg_cache}.

    Each model re-implements the {!Agg_cache.Policy.S} semantics with
    plain lists and linear scans — deliberately slow, obviously correct —
    so the optimized implementations can be driven in lockstep against
    them by {!Diff_engine}. The models are {e behaviourally identical} to
    the optimized caches: same eviction victims, same resident sets, same
    return values, for any operation sequence (the [Random] policy shares
    the optimized cache's PRNG seed so even its victims coincide). *)

type t

val create : ?seed:int -> Agg_cache.Cache.kind -> capacity:int -> t
(** [create kind ~capacity] is an empty reference cache. [seed] (default
    the seed used by {!Agg_cache.Cache.create}) only affects the [Random]
    kind. @raise Invalid_argument when [capacity <= 0]. *)

val kind : t -> Agg_cache.Cache.kind
val capacity : t -> int
val size : t -> int
val mem : t -> int -> bool

val promote : t -> int -> unit
(** Records an access to a resident key; no-op when absent — mirrors
    [Policy.S.promote]. *)

val insert : t -> pos:Agg_cache.Policy.insert_position -> int -> int option
(** Mirrors [Policy.S.insert]: makes the key resident, evicting if full,
    and returns the victim; a resident key is only repositioned (returns
    [None], never evicts). *)

val evict : t -> int option
(** Forces out the model's current victim; [None] when empty. *)

val remove : t -> int -> unit
val contents : t -> int list
(** Resident keys, in no particular order (compare as sets). *)

val clear : t -> unit
(** Mirrors [Policy.S.clear], including what it does {e not} reset (the
    [Random] PRNG stream continues, exactly like the optimized cache). *)
