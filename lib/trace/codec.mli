(** Text serialisation of traces.

    The format is one event per line — [seq op client file] with [op] one
    of [o]/[r]/[w] — preceded by a [#aggtrace v1] header; [#] lines and
    blank lines are ignored. Optional [w file size cost] lines, anywhere
    after the header, declare a file's retrieval weight (see {!Weights});
    undeclared files are unit-weighted, and sizes/costs must be positive.
    Real traces (e.g. converted DFSTrace output) in this format can be
    replayed through every experiment in place of the synthetic
    workloads. *)

exception Parse_error of { line : int; message : string }

val header : string

val write_channel : ?weights:Weights.t -> out_channel -> Trace.t -> unit
(** Weight declarations (sorted by file id) are written between the
    header and the event lines. *)

val read_channel : in_channel -> Trace.t
(** Weight lines are validated but discarded; use
    {!read_channel_weighted} to keep them.
    @raise Parse_error on malformed input. *)

val read_channel_weighted : in_channel -> Trace.t * Weights.t
(** @raise Parse_error on malformed input, including non-positive
    sizes or costs in weight lines. *)

val to_string : ?weights:Weights.t -> Trace.t -> string
val of_string : string -> Trace.t
(** @raise Parse_error on malformed input. *)

val of_string_weighted : string -> Trace.t * Weights.t
(** @raise Parse_error on malformed input. *)

val write_file : ?weights:Weights.t -> string -> Trace.t -> unit
val read_file : string -> Trace.t
(** @raise Parse_error on malformed input.
    @raise Sys_error when the file cannot be read. *)

val read_file_weighted : string -> Trace.t * Weights.t
(** @raise Parse_error on malformed input.
    @raise Sys_error when the file cannot be read. *)

val fold_channel : in_channel -> init:'a -> f:('a -> Event.t -> 'a) -> 'a
(** Streaming reader: folds over events one line at a time without
    materialising a {!Trace.t} — for traces larger than memory. Weight
    lines are validated and skipped.
    @raise Parse_error on malformed input. *)

val fold_file : string -> init:'a -> f:('a -> Event.t -> 'a) -> 'a
val iter_file : string -> (Event.t -> unit) -> unit
