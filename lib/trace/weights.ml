module Policy = Agg_cache.Policy

(* Only non-unit entries are stored: absent means unit weight, so the
   table for a fully unit-weighted trace is empty and serialisation is
   canonical (no distinction between "declared unit" and "undeclared"). *)
type t = (File_id.t, Policy.weight) Hashtbl.t

let create () = Hashtbl.create 64

let set t file w =
  Policy.check_weight ~who:"Weights.set" w;
  if file < 0 then invalid_arg "Weights.set: file id must be non-negative";
  if Policy.is_unit w then Hashtbl.remove t file else Hashtbl.replace t file w

let find t file = Hashtbl.find_opt t file
let get t file = match find t file with Some w -> w | None -> Policy.unit_weight
let count = Hashtbl.length
let is_unit t = Hashtbl.length t = 0
let iter f t = Hashtbl.iter f t

let to_alist t =
  Hashtbl.fold (fun file w acc -> (file, w) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let of_alist entries =
  let t = create () in
  List.iter (fun (file, w) -> set t file w) entries;
  t

let total_size t trace =
  Trace.fold (fun acc (e : Event.t) -> acc + (get t e.file).Policy.size) 0 trace
