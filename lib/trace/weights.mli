(** Per-file retrieval weights — the size/cost table that turns a bare
    file-id trace into a weighted caching workload. Every file defaults
    to {!Agg_cache.Policy.unit_weight}, so a trace with no weight table
    (or an empty one) replays exactly as before weights existed.

    Only non-unit entries are stored: setting a file back to the unit
    weight erases it, which keeps serialisation canonical and makes
    {!is_unit} a constant-time check. *)

type t

val create : unit -> t

val set : t -> File_id.t -> Agg_cache.Policy.weight -> unit
(** [set t file w] declares [file]'s weight. Setting the unit weight
    removes any previous declaration.
    @raise Invalid_argument when [w] has a non-positive size or cost, or
    when [file] is negative. *)

val get : t -> File_id.t -> Agg_cache.Policy.weight
(** The declared weight, or {!Agg_cache.Policy.unit_weight} when none. *)

val find : t -> File_id.t -> Agg_cache.Policy.weight option
(** [Some] only for explicitly declared (non-unit) weights. *)

val count : t -> int
(** Number of non-unit declarations. *)

val is_unit : t -> bool
(** [true] iff no file carries a non-unit weight — replay is then
    byte-identical to the unweighted world. *)

val iter : (File_id.t -> Agg_cache.Policy.weight -> unit) -> t -> unit

val to_alist : t -> (File_id.t * Agg_cache.Policy.weight) list
(** Declared entries sorted by file id — the codec's emission order. *)

val of_alist : (File_id.t * Agg_cache.Policy.weight) list -> t
(** @raise Invalid_argument as {!set}. *)

val total_size : t -> Trace.t -> int
(** Total bytes moved if every event in the trace were a miss — the
    denominator of a byte-weighted hit rate. *)
