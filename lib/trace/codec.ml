exception Parse_error of { line : int; message : string }

let header = "#aggtrace v1"

let parse_error line message = raise (Parse_error { line; message })

let write_weights oc weights =
  List.iter
    (fun (file, (w : Agg_cache.Policy.weight)) ->
      Printf.fprintf oc "w %d %d %d\n" file w.size w.cost)
    (Weights.to_alist weights)

let write_channel ?weights oc trace =
  output_string oc header;
  output_char oc '\n';
  Option.iter (write_weights oc) weights;
  Trace.iter
    (fun (e : Event.t) ->
      Printf.fprintf oc "%d %c %d %d\n" e.seq (Event.op_to_char e.op) e.client e.file)
    trace

type line = Event of Event.t | Weight of File_id.t * Agg_cache.Policy.weight | Blank

let parse_line ~lineno ~expect_header line =
  let line = String.trim line in
  if line = "" then Blank
  else if String.length line > 0 && line.[0] = '#' then begin
    if expect_header && lineno = 1 && line <> header then
      parse_error lineno (Printf.sprintf "unknown header %S (expected %S)" line header);
    Blank
  end
  else
    let int_field name s =
      match int_of_string_opt s with
      | Some v when v >= 0 -> v
      | Some _ -> parse_error lineno (name ^ " must be non-negative")
      | None -> parse_error lineno (Printf.sprintf "bad %s %S" name s)
    in
    let positive_field name s =
      match int_of_string_opt s with
      | Some v when v > 0 -> v
      | Some v -> parse_error lineno (Printf.sprintf "%s must be positive (got %d)" name v)
      | None -> parse_error lineno (Printf.sprintf "bad %s %S" name s)
    in
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ "w"; file_s; size_s; cost_s ] ->
        let file = int_field "file" file_s in
        let size = positive_field "size" size_s in
        let cost = positive_field "cost" cost_s in
        Weight (file, { Agg_cache.Policy.size; cost })
    | [ seq_s; op_s; client_s; file_s ] ->
        let op =
          if String.length op_s <> 1 then parse_error lineno (Printf.sprintf "bad op %S" op_s)
          else
            match Event.op_of_char op_s.[0] with
            | Some op -> op
            | None -> parse_error lineno (Printf.sprintf "bad op %S" op_s)
        in
        let seq = int_field "seq" seq_s in
        let client = int_field "client" client_s in
        let file = int_field "file" file_s in
        Event { Event.seq; op; client; file }
    | _ ->
        parse_error lineno
          (Printf.sprintf "expected 'seq op client file' or 'w file size cost', got %S" line)

let parse_event ~lineno ~expect_header line =
  match parse_line ~lineno ~expect_header line with
  | Event event -> Some event
  | Weight _ | Blank -> None

let fold_channel ic ~init ~f =
  let lineno = ref 0 in
  let acc = ref init in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       match parse_event ~lineno:!lineno ~expect_header:true line with
       | Some event -> acc := f !acc event
       | None -> ()
     done
   with End_of_file -> ());
  !acc

let read_channel_weighted ic =
  let trace = Trace.create () in
  let weights = Weights.create () in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       match parse_line ~lineno:!lineno ~expect_header:true line with
       | Event event -> Trace.append trace event
       | Weight (file, w) -> Weights.set weights file w
       | Blank -> ()
     done
   with End_of_file -> ());
  (trace, weights)

let read_channel ic = fst (read_channel_weighted ic)

let to_string ?weights trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Option.iter
    (fun ws ->
      List.iter
        (fun (file, (w : Agg_cache.Policy.weight)) ->
          Buffer.add_string buf (Printf.sprintf "w %d %d %d\n" file w.size w.cost))
        (Weights.to_alist ws))
    weights;
  Trace.iter
    (fun (e : Event.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d %c %d %d\n" e.seq (Event.op_to_char e.op) e.client e.file))
    trace;
  Buffer.contents buf

let of_string_weighted s =
  let trace = Trace.create () in
  let weights = Weights.create () in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun i line ->
      match parse_line ~lineno:(i + 1) ~expect_header:true line with
      | Event event -> Trace.append trace event
      | Weight (file, w) -> Weights.set weights file w
      | Blank -> ())
    lines;
  (trace, weights)

let of_string s = fst (of_string_weighted s)

let write_file ?weights path trace =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel ?weights oc trace)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)

let read_file_weighted path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel_weighted ic)

let fold_file path ~init ~f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> fold_channel ic ~init ~f)

let iter_file path f = fold_file path ~init:() ~f:(fun () event -> f event)
