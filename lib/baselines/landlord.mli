(** Landlord — Young's rent-based algorithm for file caching with sizes
    and retrieval costs ({e On-Line File Caching}, SODA 1998).

    Every resident holds {e credit}, set to its retrieval cost when it is
    inserted and reset via {!val-charge} on a demand hit. When room is
    needed, every resident pays rent proportional to its size at the
    minimal credit/size ratio; the resident whose credit reaches zero is
    evicted (ties resolved towards the least recently used — which makes
    the policy access-for-access identical to LRU at unit size/cost).

    Implements {!Agg_cache.Policy.S}; wrap with
    [Agg_cache.Cache.of_policy] for statistics. Deterministic: draws no
    randomness at all. *)

include Agg_cache.Policy.S
