module Policy = Agg_cache.Policy

(* The bundle policy is Landlord's rent mechanics with one extra entry
   point: a whole (deduplicated) bundle served in a single call, with
   every member's credit refreshed — resident or just fetched — so
   co-requested files stay resident as a unit. *)
type t = Landlord.t

let policy_name = "bundle"
let create = Landlord.create
let capacity = Landlord.capacity
let size = Landlord.size
let used = Landlord.used
let mem = Landlord.mem
let promote = Landlord.promote
let charge = Landlord.charge
let evict = Landlord.evict
let remove = Landlord.remove
let contents = Landlord.contents
let clear = Landlord.clear

let insert t ~pos ~weight:(w : Policy.weight) key =
  Policy.check_weight ~who:policy_name w;
  Landlord.insert t ~pos ~weight:w key

let request_bundle t ~weight_of keys =
  (* first occurrence of each member wins, in request order *)
  let members =
    List.rev (List.fold_left (fun acc k -> if List.mem k acc then acc else k :: acc) [] keys)
  in
  List.concat_map
    (fun k ->
      if mem t k then begin
        promote t k;
        charge t k ~cost:(weight_of k).Policy.cost;
        []
      end
      else insert t ~pos:Policy.Hot ~weight:(weight_of k) k)
    members
