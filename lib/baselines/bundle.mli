(** Online file-bundle caching — Landlord's rent mechanics with requests
    arriving as {e bundles} of files (after Qin & Etesami, {e Optimal
    Online Algorithms for File-Bundle Caching}), which is exactly the
    shape an aggregating group fetch produces.

    {!request_bundle} serves one bundle: resident members are promoted
    and re-credited with their retrieval cost, missing members are
    fetched (inserted hot, evicting by Landlord rent). Refreshing the
    whole bundle — not just the missing members — is what distinguishes
    it from per-file Landlord: co-requested files age and survive
    together. On singleton requests the policy coincides with
    {!Landlord}.

    Implements {!Agg_cache.Policy.S} (the per-file surface behaves as
    Landlord does); deterministic, draws no randomness at all. *)

include Agg_cache.Policy.S

val request_bundle : t -> weight_of:(int -> Agg_cache.Policy.weight) -> int list -> int list
(** [request_bundle t ~weight_of keys] serves the bundle [keys]
    (duplicates served once, first occurrence order): promotes and
    re-credits resident members, inserts missing ones hot with
    [weight_of key]. Returns every victim evicted to make room, in
    eviction order.
    @raise Invalid_argument when some [weight_of key] is non-positive. *)
