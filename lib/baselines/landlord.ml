open Agg_util
module Policy = Agg_cache.Policy

(* Residents live on one arena-backed recency list (hot end first); the
   per-node credit and size side arrays are indexed by arena node, which
   is stable while the node is linked. Victim selection and the rent
   drain scan the recency order hot-to-cold — O(size), fine for a
   baseline — and perform float arithmetic in exactly the per-key order
   the reference model uses, so lockstep credits compare equal. *)
type t = {
  cap : int;
  arena : Dlist_arena.t;
  order : Dlist_arena.list_; (* recency, hot end first *)
  index : Int_table.t; (* key -> node *)
  mutable credit : float array; (* node -> remaining credit *)
  mutable sizes : int array; (* node -> size *)
  mutable count : int;
  mutable used : int;
}

let policy_name = "landlord"

let create ~capacity =
  if capacity <= 0 then invalid_arg "Landlord.create: capacity must be positive";
  let arena = Dlist_arena.create ~capacity:(capacity + 1) () in
  let order = Dlist_arena.new_list arena in
  {
    cap = capacity;
    arena;
    order;
    index = Int_table.create ~capacity ();
    credit = Array.make (capacity + 1) 0.0;
    sizes = Array.make (capacity + 1) 1;
    count = 0;
    used = 0;
  }

let capacity t = t.cap
let size t = t.count
let used t = t.used
let mem t key = Int_table.get t.index key >= 0
let contents t = Dlist_arena.to_list t.arena t.order

(* The arena grows by doubling, so node indices can outrun the side
   arrays; grow them in step. *)
let ensure t node =
  let n = Array.length t.credit in
  if node >= n then begin
    let n' = max (node + 1) (2 * n) in
    let c = Array.make n' 0.0 in
    Array.blit t.credit 0 c 0 n;
    t.credit <- c;
    let s = Array.make n' 1 in
    Array.blit t.sizes 0 s 0 n;
    t.sizes <- s
  end

let promote t key =
  let node = Int_table.get t.index key in
  if node >= 0 then Dlist_arena.move_to_front t.arena t.order node

let charge t key ~cost =
  if cost <= 0 then invalid_arg "Landlord.charge: cost must be positive";
  let node = Int_table.get t.index key in
  if node >= 0 then t.credit.(node) <- float_of_int cost

let evict t =
  if t.count = 0 then None
  else begin
    (* Victim: minimal credit/size rent ratio, ties towards the cold end
       ([<=] while scanning hot-to-cold keeps the last minimum). *)
    let victim = ref (-1) in
    let best = ref infinity in
    Dlist_arena.iter t.arena t.order (fun k ->
        let n = Int_table.get t.index k in
        let r = t.credit.(n) /. float_of_int t.sizes.(n) in
        if r <= !best then begin
          victim := k;
          best := r
        end);
    let vn = Int_table.get t.index !victim in
    let delta = t.credit.(vn) /. float_of_int t.sizes.(vn) in
    (* Every other resident pays rent proportional to its size. *)
    Dlist_arena.iter t.arena t.order (fun k ->
        if k <> !victim then begin
          let n = Int_table.get t.index k in
          t.credit.(n) <- t.credit.(n) -. (delta *. float_of_int t.sizes.(n))
        end);
    t.used <- t.used - t.sizes.(vn);
    t.count <- t.count - 1;
    Dlist_arena.remove t.arena vn;
    Int_table.remove t.index !victim;
    Some !victim
  end

let insert t ~pos ~weight:(w : Policy.weight) key =
  Policy.check_weight ~who:policy_name w;
  let node = Int_table.get t.index key in
  if node >= 0 then begin
    (* reposition only; credit and recorded weight are untouched *)
    (match pos with
    | Policy.Hot -> Dlist_arena.move_to_front t.arena t.order node
    | Policy.Cold -> Dlist_arena.move_to_back t.arena t.order node);
    []
  end
  else if w.Policy.size > t.cap then []
  else begin
    let victims = ref [] in
    while t.used + w.Policy.size > t.cap do
      match evict t with
      | Some v -> victims := v :: !victims
      | None -> assert false (* used > 0 implies a resident victim *)
    done;
    let node =
      match pos with
      | Policy.Hot -> Dlist_arena.push_front t.arena t.order key
      | Policy.Cold -> Dlist_arena.push_back t.arena t.order key
    in
    ensure t node;
    t.credit.(node) <- float_of_int w.Policy.cost;
    t.sizes.(node) <- w.Policy.size;
    Int_table.set t.index key node;
    t.count <- t.count + 1;
    t.used <- t.used + w.Policy.size;
    List.rev !victims
  end

let remove t key =
  let node = Int_table.get t.index key in
  if node >= 0 then begin
    t.used <- t.used - t.sizes.(node);
    t.count <- t.count - 1;
    Dlist_arena.remove t.arena node;
    Int_table.remove t.index key
  end

let clear t =
  Dlist_arena.clear_list t.arena t.order;
  Int_table.clear t.index;
  t.count <- 0;
  t.used <- 0
