open Agg_util
module Policy = Agg_cache.Policy

(* Same layout as [Landlord]: an arena-backed recency list for tie-breaks
   plus per-node side arrays, here holding the GreedyDual-Size priority
   [H = L + cost/size]. Instead of draining credits, eviction raises the
   global inflation floor [L] to the victim's priority, which ages every
   other resident for free. *)
type t = {
  cap : int;
  arena : Dlist_arena.t;
  order : Dlist_arena.list_; (* recency, hot end first *)
  index : Int_table.t; (* key -> node *)
  mutable h : float array; (* node -> priority *)
  mutable sizes : int array; (* node -> size *)
  mutable inflation : float; (* L, non-decreasing *)
  mutable count : int;
  mutable used : int;
}

let policy_name = "gds"

let create ~capacity =
  if capacity <= 0 then invalid_arg "Greedy_dual.create: capacity must be positive";
  let arena = Dlist_arena.create ~capacity:(capacity + 1) () in
  let order = Dlist_arena.new_list arena in
  {
    cap = capacity;
    arena;
    order;
    index = Int_table.create ~capacity ();
    h = Array.make (capacity + 1) 0.0;
    sizes = Array.make (capacity + 1) 1;
    inflation = 0.0;
    count = 0;
    used = 0;
  }

let capacity t = t.cap
let size t = t.count
let used t = t.used
let mem t key = Int_table.get t.index key >= 0
let contents t = Dlist_arena.to_list t.arena t.order

let ensure t node =
  let n = Array.length t.h in
  if node >= n then begin
    let n' = max (node + 1) (2 * n) in
    let c = Array.make n' 0.0 in
    Array.blit t.h 0 c 0 n;
    t.h <- c;
    let s = Array.make n' 1 in
    Array.blit t.sizes 0 s 0 n;
    t.sizes <- s
  end

let priority t ~size ~cost = t.inflation +. (float_of_int cost /. float_of_int size)

let promote t key =
  let node = Int_table.get t.index key in
  if node >= 0 then Dlist_arena.move_to_front t.arena t.order node

let charge t key ~cost =
  if cost <= 0 then invalid_arg "Greedy_dual.charge: cost must be positive";
  let node = Int_table.get t.index key in
  if node >= 0 then t.h.(node) <- priority t ~size:t.sizes.(node) ~cost

let evict t =
  if t.count = 0 then None
  else begin
    (* Victim: minimal H, ties towards the cold end ([<=] while scanning
       hot-to-cold keeps the last minimum). *)
    let victim = ref (-1) in
    let best = ref infinity in
    Dlist_arena.iter t.arena t.order (fun k ->
        let n = Int_table.get t.index k in
        if t.h.(n) <= !best then begin
          victim := k;
          best := t.h.(n)
        end);
    let vn = Int_table.get t.index !victim in
    t.inflation <- t.h.(vn);
    t.used <- t.used - t.sizes.(vn);
    t.count <- t.count - 1;
    Dlist_arena.remove t.arena vn;
    Int_table.remove t.index !victim;
    Some !victim
  end

let insert t ~pos ~weight:(w : Policy.weight) key =
  Policy.check_weight ~who:policy_name w;
  let node = Int_table.get t.index key in
  if node >= 0 then begin
    (match pos with
    | Policy.Hot -> Dlist_arena.move_to_front t.arena t.order node
    | Policy.Cold -> Dlist_arena.move_to_back t.arena t.order node);
    []
  end
  else if w.Policy.size > t.cap then []
  else begin
    let victims = ref [] in
    while t.used + w.Policy.size > t.cap do
      match evict t with
      | Some v -> victims := v :: !victims
      | None -> assert false (* used > 0 implies a resident victim *)
    done;
    let node =
      match pos with
      | Policy.Hot -> Dlist_arena.push_front t.arena t.order key
      | Policy.Cold -> Dlist_arena.push_back t.arena t.order key
    in
    ensure t node;
    t.h.(node) <- priority t ~size:w.Policy.size ~cost:w.Policy.cost;
    t.sizes.(node) <- w.Policy.size;
    Int_table.set t.index key node;
    t.count <- t.count + 1;
    t.used <- t.used + w.Policy.size;
    List.rev !victims
  end

let remove t key =
  let node = Int_table.get t.index key in
  if node >= 0 then begin
    t.used <- t.used - t.sizes.(node);
    t.count <- t.count - 1;
    Dlist_arena.remove t.arena node;
    Int_table.remove t.index key
  end

let clear t =
  Dlist_arena.clear_list t.arena t.order;
  Int_table.clear t.index;
  t.count <- 0;
  t.used <- 0;
  t.inflation <- 0.0
