(** GreedyDual-Size — Cao & Irani's generalization of GreedyDual to
    files with sizes and retrieval costs.

    Each resident carries a priority [H = L + cost/size], assigned when
    it is inserted and refreshed via {!val-charge} on a demand hit; the
    eviction victim is the minimal-[H] resident and the inflation floor
    [L] rises to its priority, aging everything else implicitly. Ties are
    resolved towards the least recently used, which makes the policy
    access-for-access identical to LRU at unit size/cost.

    Implements {!Agg_cache.Policy.S}; wrap with
    [Agg_cache.Cache.of_policy] for statistics. Deterministic: draws no
    randomness at all. *)

include Agg_cache.Policy.S
