#!/bin/sh
# CI entry point: full build, full test suite, the lockstep differential
# gate against the lib/oracle reference models, and a quick smoke run of
# the paper-vs-measured checks from the reproduction harness.
#
# The check thresholds are calibrated for full-size runs (60k events), so
# the --quick pass only asserts the harness runs end to end; the full-size
# verdicts are covered by the `report checks` alcotest case in `dune runtest`.
#
# Usage:
#   ./ci.sh          # build + all tests + differential + quick checks
#   ./ci.sh --fast   # build + quick tests only (skips `Slow alcotest cases)
#
# Environment:
#   DIFFERENTIAL_OPS=200000   # opt-in: a larger differential fuzz budget
#                             # (generated ops per policy) on top of the
#                             # fixed-seed @differential gate
set -eu

cd "$(dirname "$0")"

# All randomness must flow through Agg_util.Prng with explicit seeds;
# direct Stdlib.Random use would silently break run-to-run reproducibility.
# (QCheck's own generators live in test/, which is exempt.)
if grep -rnE '(^|[^.A-Za-z_])(Stdlib\.)?Random\.(self_init|State|int|bits|bool|float|full_init|init)' \
    lib bin bench examples 2>/dev/null; then
  echo "ci.sh: direct Random use found outside Agg_util.Prng (see matches above)" >&2
  exit 1
fi

# The fault layer must derive every decision from Agg_util.Prng (the
# Random grep above already rejects Stdlib.Random): a fault plan that
# drew entropy anywhere else would stop being a pure function of its
# seed and coordinates, breaking jobs-independent replay.
if ! grep -rq 'Agg_util\.Prng' lib/faults; then
  echo "ci.sh: lib/faults no longer draws its randomness from Agg_util.Prng" >&2
  exit 1
fi

# The cluster layer's ring placement, per-node fault seeds and churn all
# hang off Agg_util.Prng.derive: any other entropy source would break the
# N=1/k=1 Fleet byte-identity guarantee and jobs-independent sweeps.
if ! grep -rq 'Agg_util\.Prng' lib/cluster; then
  echo "ci.sh: lib/cluster no longer draws its randomness from Agg_util.Prng" >&2
  exit 1
fi

# The scenario fuzzer's perturbations must come from Agg_util.Prng so a
# fixed --seed replays the same violation and shrunk scenario.
if ! grep -rq 'Agg_util\.Prng' lib/scenario; then
  echo "ci.sh: lib/scenario no longer draws its randomness from Agg_util.Prng" >&2
  exit 1
fi

# The weighted baselines (Landlord, GreedyDual-Size, Bundle) are
# deterministic by contract — their lockstep differential against the
# lib/oracle models and the unit-weight LRU-equivalence checks assume
# replay is a pure function of the op sequence. Any entropy source,
# Agg_util.Prng included, would break that.
if grep -rnE '(^|[^.A-Za-z_])(Stdlib\.)?Random\.|Prng\.' \
    lib/baselines/landlord.ml lib/baselines/greedy_dual.ml lib/baselines/bundle.ml 2>/dev/null; then
  echo "ci.sh: the weighted baselines must stay deterministic (see matches above)" >&2
  exit 1
fi

# All clock access must flow through Agg_obs.Span (lib/obs): hot-path
# modules reading wall-clock time directly could make simulation results
# time-dependent and break run-to-run reproducibility.
if grep -rnE 'Unix\.gettimeofday|Unix\.time\b|Sys\.time\b|Monotonic_clock\.' \
    lib bin bench examples 2>/dev/null | grep -v '^lib/obs/'; then
  echo "ci.sh: direct clock use found outside Agg_obs.Span (see matches above)" >&2
  exit 1
fi

# Within lib/obs itself, the only wall-clock reader is Span: Series,
# Trace_ctx and the sinks run on the simulated clock (access indices and
# summed latencies) and must stay byte-deterministic run-to-run.
if grep -rlnE 'Unix\.gettimeofday|Unix\.time\b|Sys\.time\b|Monotonic_clock\.' \
    lib/obs 2>/dev/null | grep -v '^lib/obs/span\.ml$'; then
  echo "ci.sh: wall-clock use found in lib/obs outside span.ml (see matches above)" >&2
  exit 1
fi

# The telemetry layer's only entropy (trace head-sampling, the sampled
# sink) must come from Agg_util.Prng.derive so sampling decisions are
# pure functions of (seed, index) for any --jobs value.
if ! grep -rq 'Agg_util\.Prng' lib/obs; then
  echo "ci.sh: lib/obs no longer draws its randomness from Agg_util.Prng" >&2
  exit 1
fi

# Arena discipline: the per-access recency paths in lib/cache and
# lib/successor are flat-array structures (Agg_util.Dlist_arena /
# Agg_util.Int_table); a Hashtbl creeping back in would reintroduce
# per-access hashing and allocation. Sanctioned exceptions, none of them
# on the recency hot path:
#   lib/cache/lfu.ml, lib/cache/arc.ml      frequency counts / ghost lists
#   lib/cache/belady.ml                     offline oracle policy
#   lib/successor/successor_list.ml         Frequency-policy count tables
#   lib/successor/tracker.ml                Frequency-policy fallback lists
#   lib/successor/{graph,grouping,oracle}.* offline baselines and oracles
hot_hashtbl=$(grep -rl 'Hashtbl' lib/cache lib/successor 2>/dev/null \
  | grep -vE 'lib/cache/(arc|belady|lfu)\.ml$' \
  | grep -vE 'lib/successor/(tracker|successor_list|graph|grouping|oracle)\.(ml|mli)$' \
  || true)
if [ -n "$hot_hashtbl" ]; then
  echo "ci.sh: Hashtbl found on the arena hot path:" >&2
  echo "$hot_hashtbl" >&2
  exit 1
fi

if [ "${1:-}" = "--fast" ]; then
  dune build @all
  dune build @runtest-fast
else
  dune build @all
  dune runtest
fi

# Differential gate: every policy, successor scheme and system configuration
# against its executable reference model; fixed seed, 10k ops per policy.
dune build @differential

# Observability gate: JSONL event-dump schema validation plus exact
# reconciliation of event counts against Metrics aggregates, and the
# sweep-profiler / Chrome-trace smoke run.
dune build @obs

# Fault-injection gate: smoke-run `aggsim faults` (single hostile run and
# the loss-rate resilience sweep) at quick size.
dune build @faults

# Cluster gate: smoke-run `aggsim cluster` (replicated ring under node
# kills and the node-loss sweep) at quick size.
dune build @cluster

# Scenario gate: validate the declarative corpus, run it fast-sized with
# every invariant checked (the known-bad entries must fail), and smoke the
# fuzz/shrink path.
dune build @scenario

# Telemetry gate: windowed-series exports reconciled against run
# counters, the Chrome span dump, and the deterministic sampled
# event-dump path.
dune build @telemetry

# Weighted gate: smoke-run `aggsim weighted` (size/cost-skewed profiles,
# rent-based baselines vs the aggregating cache) in table and sweep
# forms.
dune build @weighted

# Micro gate: Bechamel micro-benchmarks and the per-policy throughput
# pass at reduced quota; exercises every online policy facade.
dune build @micro

# Optional larger fuzz budget for nightly-style runs.
if [ -n "${DIFFERENTIAL_OPS:-}" ]; then
  dune exec bin/aggsim.exe -- differential --ops "$DIFFERENTIAL_OPS" --quick
fi

dune exec bench/main.exe -- checks --quick
