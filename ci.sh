#!/bin/sh
# CI entry point: full build, full test suite, and a quick smoke run of
# the paper-vs-measured checks from the reproduction harness.
#
# The check thresholds are calibrated for full-size runs (60k events), so
# the --quick pass only asserts the harness runs end to end; the full-size
# verdicts are covered by the `report checks` alcotest case in `dune runtest`.
#
# Usage:
#   ./ci.sh          # build + all tests + quick checks
#   ./ci.sh --fast   # build + quick tests only (skips `Slow alcotest cases)
set -eu

cd "$(dirname "$0")"

if [ "${1:-}" = "--fast" ]; then
  dune build @all
  dune build @runtest-fast
else
  dune build @all
  dune runtest
fi

dune exec bench/main.exe -- checks --quick
